"""Page-mapping FTL with the SHARE extension.

This is the firmware of the reproduction's OpenSSD stand-in.  It owns:

* the forward L2P table — a pluggable :class:`~repro.ftl.mapping.MappingStrategy`
  selected by ``config.l2p_strategy`` (:mod:`repro.ftl.mapping`),
* the reverse-reference tracking with the bounded share table
  (:mod:`repro.ftl.reverse`),
* greedy garbage collection over the data blocks,
* the mapping delta log and its checkpointing
  (:mod:`repro.ftl.deltalog`),
* crash recovery that merges spare-area stamps with logged deltas by
  sequence number.

Layout: the last ``config.map_block_count`` blocks of the array hold the
mapping log; every other block is a data block.  The logical address space
is sized off the data blocks with the geometry's over-provisioning ratio
held back for GC headroom.

Media faults degrade the device gracefully instead of killing it:

* an uncorrectable read is retried up to ``config.read_retries`` times;
  a page that needed retries is *scrubbed* — relocated to a fresh PPN
  (copy-safe for shared pages: every referencing LPN is stamped on the
  copy) — before it decays further;
* a program failure retires the active block (grown bad): its live pages
  are evacuated, a ``badblk`` delta record persists the retirement, a
  spare block backfills the free pool, and the host program retries at a
  fresh PPN;
* an erase failure at GC time retires the victim the same way, without
  returning it to the free pool;
* a page that stays unreadable keeps its mapping pinned into the retired
  block so host reads surface the typed :class:`UncorrectableReadError`
  — the device never returns wrong data silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    EraseFailError,
    FtlError,
    MediaError,
    OutOfSpaceError,
    ProgramFailError,
    ShareError,
    UncorrectableReadError,
    UnmappedPageError,
)
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.deltalog import (
    KIND_AWRITE,
    KIND_BADBLK,
    KIND_SHARE,
    KIND_SNAP,
    KIND_TRIM,
    KIND_XCOMMIT,
    DeltaRecord,
    MapLog,
)
from repro.ftl.mapping import UNMAPPED, create_strategy
from repro.ftl.reverse import ReverseMap
from repro.ftl.share_ext import (
    SharePair,
    expand_range,
    observe_batch,
    validate_batch,
)
from repro.obs import NULL_TELEMETRY, hot_timer
from repro.sim.faults import NO_FAULTS, FaultPlan


@dataclass
class FtlStats:
    """Cumulative firmware counters (Figure 6's metrics and more)."""

    host_page_writes: int = 0
    host_page_reads: int = 0
    gc_events: int = 0
    copyback_pages: int = 0
    block_erases: int = 0
    share_commands: int = 0
    share_pairs: int = 0
    share_spills: int = 0          # 'copy' policy: private copies made
    share_log_spills: int = 0      # 'log' policy: entries spilled to flash
    spill_lookups: int = 0         # GC reads of spilled reverse mappings
    trim_commands: int = 0
    trim_pages: int = 0
    wear_level_moves: int = 0
    read_retries: int = 0          # extra read attempts that were needed
    read_relocations: int = 0      # pages scrubbed after a retried read
    uncorrectable_reads: int = 0   # reads that failed even after retries
    program_fails: int = 0
    erase_fails: int = 0
    grown_bad_blocks: int = 0
    corrupt_map_pages: int = 0     # mapping-log pages skipped at recovery

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _RecoveredState:
    """Intermediate result of the media scan during recovery."""

    winners: Dict[int, Tuple[int, Optional[int], str]] = field(default_factory=dict)
    max_seq: int = 0
    grown_bad: Dict[int, int] = field(default_factory=dict)  # block -> seq


class PageMappingFtl:
    """The firmware: read/write/trim/share/flush over a :class:`NandArray`.

    All mapping state is volatile; only the NAND array persists.  Tests
    simulate power failure by abandoning the FTL instance and calling
    :meth:`recover` on the same array.
    """

    def __init__(self, nand: NandArray, config: Optional[FtlConfig] = None,
                 faults: FaultPlan = NO_FAULTS, telemetry=None) -> None:
        self.nand = nand
        self.geometry = nand.geometry
        self.config = config or FtlConfig()
        self.faults = faults
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        geometry = self.geometry
        if self.config.map_block_count >= geometry.block_count - 4:
            raise ValueError("map region leaves too few data blocks")
        self._map_blocks = list(range(
            geometry.block_count - self.config.map_block_count,
            geometry.block_count))
        self._data_blocks = list(range(
            geometry.block_count - self.config.map_block_count))
        data_pages = len(self._data_blocks) * geometry.pages_per_block
        self._logical_pages = int(data_pages * (1.0 - geometry.overprovision_ratio))
        self.fwd = create_strategy(self.config.l2p_strategy,
                                   self._logical_pages,
                                   self.config.l2p_group_pages)
        # Hot-path fast lane: the raw LPN-indexed list on the flat
        # backing, None otherwise (strategies answer through get()).
        self._fwd_table = self.fwd.table
        self.rev = ReverseMap(self.config.share_table_entries)
        self._records_per_page = self.config.deltas_per_page(geometry.page_size)
        self.maplog = MapLog(nand, geometry, self._map_blocks,
                             self._records_per_page, faults,
                             telemetry=self.telemetry)
        self.maplog.set_snapshot_provider(self._snapshot_records)
        self.stats = FtlStats()
        # Telemetry handles (shared no-ops when telemetry is disabled).
        metrics = self.telemetry.metrics
        self._m_gc_events = metrics.counter("ftl.gc.events")
        self._m_copybacks = metrics.counter("ftl.gc.copyback_pages")
        self._m_erases = metrics.counter("ftl.gc.block_erases")
        self._m_spill_lookups = metrics.counter("ftl.gc.spill_lookups")
        self._m_wear_moves = metrics.counter("ftl.wear.level_moves")
        self._m_share_spills = metrics.counter("ftl.share.spills")
        self._m_share_log_spills = metrics.counter("ftl.share.log_spills")
        self._m_share_spill_hwm = metrics.gauge("ftl.share.spill_hwm")
        self._m_free_blocks = metrics.gauge("ftl.free_blocks")
        self._m_read_retries = metrics.counter("media.read_retries")
        self._m_relocations = metrics.counter("media.read_relocations")
        self._m_uncorrectable = metrics.counter("media.uncorrectable_reads")
        self._m_program_fails = metrics.counter("media.program_fails")
        self._m_erase_fails = metrics.counter("media.erase_fails")
        self._m_grown_bad = metrics.counter("media.grown_bad_blocks")
        self._m_corrupt_map = metrics.counter("media.corrupt_map_pages")
        self._m_spare_pool = metrics.gauge("media.spare_pool")
        self._m_l2p_footprint = metrics.gauge("ftl.l2p.footprint_bytes")
        self._m_l2p_runs = metrics.gauge("ftl.l2p.runs")
        self._m_l2p_splits = metrics.gauge("ftl.l2p.remap_splits")
        # Sampled-mode gate and wall-clock phase timers (None unless a
        # profiler is attached — one load + branch on the hot path).
        self._sampler = getattr(self.telemetry, "sampler", None)
        profiler = getattr(self.telemetry, "profiler", None)
        self._pt_l2p = hot_timer(profiler, "ftl.l2p")
        self._pt_gc = (profiler.timer("ftl.gc")
                       if profiler is not None
                       and getattr(profiler, "enabled", False) else None)
        self._valid_count: Dict[int, int] = {b: 0 for b in self._data_blocks}
        self._free_blocks: List[int] = list(self._data_blocks)
        # Bad-block management: spare blocks held back from the free pool
        # as replacements, and the persisted grown-bad set (block -> the
        # seq of its badblk record).
        if self.config.spare_block_count >= len(self._data_blocks) - 4:
            raise ValueError("spare_block_count leaves too few data blocks")
        self._spare_blocks: List[int] = [
            self._free_blocks.pop()
            for __ in range(self.config.spare_block_count)]
        self._grown_bad: Dict[int, int] = {}
        self._m_spare_pool.set(len(self._spare_blocks))
        self._m_free_blocks.set(len(self._free_blocks))
        # Channel-striped host allocation: one active block per channel,
        # filled round-robin so sequential writes spread across channels.
        # At channel_count == 1 this degenerates to the single active
        # block + FIFO free-list behaviour of the serial model.
        self._active_host: Dict[int, Optional[int]] = {
            ch: None for ch in range(geometry.channel_count)}
        self._host_cursor = 0
        self._active_gc: Optional[int] = None
        # Charged-work ledger: (kind, channel) entries appended at the
        # exact sites where the latency-formula counters increment, so
        # the device can place each command's internal work on the right
        # channel.  Drained by the device per command via take_work().
        self._work: List[Tuple[str, int]] = []
        self._seq = 1
        self._share_backed: Dict[int, Tuple[int, int]] = {}
        self._trim_tombstones: Dict[int, int] = {}
        self._pending_trims: List[DeltaRecord] = []
        self._pending_atomic: set = set()
        # X-FTL shadow state: per-transaction staged pages, and a reverse
        # view so GC can move (without stamping) pages that belong to an
        # uncommitted transaction.
        self._txn_shadow: Dict[int, Dict[int, int]] = {}
        self._shadow_owner: Dict[int, Tuple[int, int]] = {}
        self._in_gc = False
        self._publish_l2p_gauges()

    def _publish_l2p_gauges(self) -> None:
        """Refresh the ``ftl.l2p.*`` gauges from the strategy's O(1)
        accounting.  Called off the per-page hot path: at init, after a
        SHARE batch (telemetry-gated), at flush, and after recovery."""
        fwd = self.fwd
        self._m_l2p_footprint.set(fwd.footprint_bytes())
        self._m_l2p_runs.set(fwd.fragment_count())
        self._m_l2p_splits.set(fwd.remap_splits)

    # ------------------------------------------------------------ geometry

    @property
    def logical_pages(self) -> int:
        """Size of the LPN address space exposed to the host."""
        return self._logical_pages

    @property
    def page_size(self) -> int:
        return self.geometry.page_size

    @property
    def max_share_batch(self) -> int:
        """Largest atomic SHARE batch (one mapping page of deltas)."""
        return self._records_per_page

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    @property
    def map_page_writes(self) -> int:
        return self.maplog.page_writes

    # --------------------------------------------------- charged-work ledger

    def _note_work(self, kind: str, ppn: int) -> None:
        self._work.append(
            (kind, (ppn // self.geometry.pages_per_block)
             % self.geometry.channel_count))

    def take_work(self) -> List[Tuple[str, int]]:
        """Drain the ``(kind, channel)`` ledger of charged work since the
        last drain (including the map log's page programs).  The device
        calls this once per command to attribute the command's internal
        work to channels; totals are always derived from the stats
        counters, so a drained ledger only ever affects *placement*.

        When both ledgers are empty (the common no-internal-work
        command) the *live* empty list is returned without allocating a
        replacement; callers only read the result."""
        work = self._work
        if work:
            self._work = []
        map_channels = self.maplog.take_work()
        if map_channels:
            if not work:
                # Never extend the live (still-installed) empty ledger.
                work = []
            work.extend(("map_write", ch) for ch in map_channels)
        return work

    def _check_lpn_range(self, lpn: int, count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        if lpn < 0 or lpn + count > self._logical_pages:
            raise ValueError(
                f"LPN range [{lpn}, {lpn + count}) outside logical space "
                f"[0, {self._logical_pages})")

    # ------------------------------------------------------------- host IO

    def read(self, lpn: int) -> Any:
        """Return the page image of ``lpn``.

        Raises :class:`UncorrectableReadError` when the backing page is
        unreadable even after firmware read-retry — the typed error is the
        contract: the host never receives wrong data silently."""
        self._check_lpn_range(lpn)
        # Range checked above: index the raw L2P table directly on the
        # flat backing (the fast lane — one None-compare of indirection),
        # ask the strategy on the compact backings.
        table = self._fwd_table
        pt_l2p = self._pt_l2p
        if pt_l2p is not None:
            t0 = perf_counter_ns()
            ppn = table[lpn] if table is not None else self.fwd.get(lpn)
            pt_l2p.add(perf_counter_ns() - t0)
        else:
            ppn = table[lpn] if table is not None else self.fwd.get(lpn)
        if ppn == UNMAPPED:
            raise UnmappedPageError(f"LPN {lpn} is unmapped")
        self.stats.host_page_reads += 1
        self._note_work("host_read", ppn)
        return self._read_page(ppn, scrub_ok=True)

    def is_mapped(self, lpn: int) -> bool:
        self._check_lpn_range(lpn)
        return self.fwd.is_mapped(lpn)

    def write(self, lpn: int, data: Any) -> None:
        """Program ``data`` for ``lpn`` out of place and remap."""
        with self.faults.operation("ftl.write", (lpn,)):
            self._check_lpn_range(lpn)
            self._ensure_free_space()
            seq = self._next_seq()
            self.faults.checkpoint("ftl.before_program")
            ppn = self._program_data(data, ((lpn, seq),), for_gc=False)
            self._note_work("host_program", ppn)
            self.faults.checkpoint("ftl.after_program")
            self._remap_after_program(lpn, ppn)
            self.stats.host_page_writes += 1

    def _remap_after_program(self, lpn: int, ppn: int) -> None:
        pt_l2p = self._pt_l2p
        t0 = perf_counter_ns() if pt_l2p is not None else 0
        old = self.fwd.update(lpn, ppn)
        self.rev.set_primary(ppn, lpn)
        self._valid_count[self.geometry.block_of(ppn)] += 1
        if old is not None and old != ppn:
            self._drop_ref(old, lpn)
        self._share_backed.pop(lpn, None)
        self._trim_tombstones.pop(lpn, None)
        if pt_l2p is not None:
            pt_l2p.add(perf_counter_ns() - t0)

    def _drop_ref(self, ppn: int, lpn: int) -> None:
        if self.rev.drop_ref(ppn, lpn):
            self._valid_count[self.geometry.block_of(ppn)] -= 1

    # ------------------------------------------------------- media handling

    def _read_page(self, ppn: int, scrub_ok: bool = False) -> Any:
        """NAND read with firmware read-retry.

        Retries up to ``config.read_retries`` extra attempts; when a read
        only succeeded after retries and ``scrub_ok`` is set, the page is
        scrubbed (relocated) so the decaying cell is healed before it dies
        outright.  A read that stays uncorrectable raises the typed error.
        """
        retries = self.config.read_retries
        attempt = 0
        while True:
            try:
                data = self.nand.read(ppn)
            except UncorrectableReadError:
                if attempt >= retries:
                    self.stats.uncorrectable_reads += 1
                    self._m_uncorrectable.inc()
                    raise
                attempt += 1
                self.stats.read_retries += 1
                self._m_read_retries.inc()
                continue
            if attempt and scrub_ok and self.config.scrub_after_retry:
                self._scrub(ppn, data)
            return data

    def _scrub(self, ppn: int, data: Any) -> None:
        """Best-effort relocation of a page that needed read-retry.

        Copy-safe for shared pages: the fresh copy is stamped with *every*
        referencing LPN, so all of them survive recovery.  Skipped when the
        page cannot be moved safely right now (mid-GC, shadow page, LPNs of
        an in-flight atomic write, or no space) — the next retried read
        gets another chance."""
        if self._in_gc or ppn in self._shadow_owner or not self.rev.is_valid(ppn):
            return
        refs = sorted(self.rev.refs(ppn))
        if any(lpn in self._pending_atomic for lpn in refs):
            return
        stamps = tuple((lpn, self._next_seq()) for lpn in refs)
        try:
            new_ppn = self._program_data(data, stamps, for_gc=False)
        except (MediaError, OutOfSpaceError):
            return
        self.rev.move_page(ppn, new_ppn, refs[0])
        self._valid_count[self.geometry.block_of(ppn)] -= 1
        self._valid_count[self.geometry.block_of(new_ppn)] += 1
        for lpn in refs:
            self.fwd.update(lpn, new_ppn)
            self._share_backed.pop(lpn, None)
        self.stats.read_relocations += 1
        self._m_relocations.inc()

    def _program_data(self, data: Any, spare, for_gc: bool) -> int:
        """Program a data page, surviving program failures.

        On a failure the consumed page's block grows bad — live pages are
        evacuated, the retirement is persisted, a spare backfills the free
        pool — and the program retries at a fresh PPN, up to
        ``config.program_retry_limit`` blocks before surfacing the typed
        error."""
        last_error: Optional[ProgramFailError] = None
        inflight = frozenset(lpn for lpn, __ in spare)
        for __ in range(self.config.program_retry_limit):
            ppn = self._alloc_page(for_gc=for_gc)
            try:
                self.nand.program(ppn, data, spare=spare)
            except ProgramFailError as exc:
                last_error = exc
                self.stats.program_fails += 1
                self._m_program_fails.inc()
                self._retire_block(self.geometry.block_of(ppn), inflight)
                continue
            return ppn
        raise ProgramFailError(
            f"program failed on {self.config.program_retry_limit} "
            f"consecutive blocks: {last_error}")

    def _retire_block(self, block: int,
                      inflight: frozenset = frozenset()) -> None:
        """Grow ``block`` bad (idempotent): evacuate its live pages,
        persist a ``badblk`` record, and backfill the free pool from the
        spare pool.  The block is never erased or reused again; any page
        that cannot be evacuated keeps its mapping pinned here so host
        reads surface the typed error instead of wrong data.

        ``inflight`` names LPNs whose *new* version is mid-program with an
        already-assigned sequence number: evacuation must not re-stamp
        their old copies, or the fresh (higher) stamp would beat the
        in-flight write at recovery and resurrect stale data."""
        if block in self._grown_bad:
            return
        for channel, active in self._active_host.items():
            if active == block:
                self._active_host[channel] = None
        if block == self._active_gc:
            self._active_gc = None
        if block in self._free_blocks:
            self._free_blocks.remove(block)
        seq = self._next_seq()
        self._grown_bad[block] = seq
        self.stats.grown_bad_blocks = len(self._grown_bad)
        self._m_grown_bad.inc()
        # Release a spare first: the evacuation below may need the space.
        if self._spare_blocks:
            self._free_blocks.append(self._spare_blocks.pop())
        self._m_spare_pool.set(len(self._spare_blocks))
        self._m_free_blocks.set(len(self._free_blocks))
        self._evacuate_for_retirement(block, inflight)
        self.maplog.append_atomic(
            [DeltaRecord(KIND_BADBLK, block, None, None, seq)])

    def _evacuate_for_retirement(self, block: int,
                                 inflight: frozenset = frozenset()) -> None:
        """Move every live page out of a block being retired, best effort.

        Unlike GC evacuation this tolerates further media errors per page:
        an unreadable page stays pinned in the retired block (its payload
        is gone; the typed error is all the host can get), and a page that
        cannot be re-programmed keeps its old mapping too."""
        geometry = self.geometry
        start = geometry.first_ppn(block)
        for offset in range(self.nand.programmed_pages_in_block(block)):
            ppn = start + offset
            if ppn in self._shadow_owner:
                try:
                    self._move_shadow_page(ppn)
                except (MediaError, OutOfSpaceError):
                    pass   # shadow copy lost; its txn fails at read time
                continue
            if not self.rev.is_valid(ppn):
                continue
            refs = sorted(self.rev.refs(ppn))
            try:
                data = self._read_page(ppn)
            except UncorrectableReadError:
                continue
            stamps = tuple((lpn, self._next_seq()) for lpn in refs
                           if lpn not in self._pending_atomic
                           and lpn not in inflight)
            try:
                new_ppn = self._program_data(data, stamps, for_gc=True)
            except (MediaError, OutOfSpaceError):
                continue
            self.rev.move_page(ppn, new_ppn, refs[0])
            self._valid_count[block] -= 1
            self._valid_count[geometry.block_of(new_ppn)] += 1
            stamped = {lpn for lpn, __ in stamps}
            fwd_update = self.fwd.update
            for lpn in refs:
                fwd_update(lpn, new_ppn)
                if lpn in stamped:
                    self._share_backed.pop(lpn, None)
            self.stats.copyback_pages += 1
            self._note_work("copyback", new_ppn)
            self._m_copybacks.inc()

    @property
    def grown_bad_blocks(self) -> Set[int]:
        """Blocks retired for media failures (never erased or reused)."""
        return set(self._grown_bad)

    @property
    def spare_pool_level(self) -> int:
        return len(self._spare_blocks)

    def media_report(self) -> Dict[str, int]:
        """The ``media.*`` degradation counters as one snapshot."""
        return {
            "read_retries": self.stats.read_retries,
            "read_relocations": self.stats.read_relocations,
            "uncorrectable_reads": self.stats.uncorrectable_reads,
            "program_fails": self.stats.program_fails,
            "erase_fails": self.stats.erase_fails,
            "grown_bad_blocks": len(self._grown_bad),
            "corrupt_map_pages": self.stats.corrupt_map_pages,
            "spare_pool": len(self._spare_blocks),
        }

    # ---------------------------------------------------------------- X-FTL

    def begin_txn(self) -> int:
        """Open an X-FTL transaction (Section 6.2's baseline): subsequent
        :meth:`write_txn` pages stay invisible until :meth:`commit_txn`."""
        txn_id = self._next_seq()
        self._txn_shadow[txn_id] = {}
        return txn_id

    def write_txn(self, txn_id: int, lpn: int, data: Any) -> None:
        """Stage an update-in-place write under a transaction.

        The page is programmed immediately (unstamped, so a crash leaves
        it invisible) but the forward map keeps pointing at the old
        version until commit — X-FTL's shadow-paging-in-the-FTL."""
        shadow = self._txn_shadow.get(txn_id)
        if shadow is None:
            raise FtlError(f"unknown transaction: {txn_id}")
        self._check_lpn_range(lpn)
        if len(shadow) >= self._records_per_page and lpn not in shadow:
            raise FtlError(
                f"transaction exceeds the atomic commit capacity of "
                f"{self._records_per_page} pages")
        self._ensure_free_space()
        ppn = self._program_data(data, (), for_gc=False)
        self._note_work("host_program", ppn)
        old_shadow_ppn = shadow.get(lpn)
        if old_shadow_ppn is not None:
            # Restaged within the txn: the earlier shadow copy dies.
            self._shadow_owner.pop(old_shadow_ppn, None)
            self._valid_count[self.geometry.block_of(old_shadow_ppn)] -= 1
        shadow[lpn] = ppn
        self._shadow_owner[ppn] = (txn_id, lpn)
        self._valid_count[self.geometry.block_of(ppn)] += 1
        self.stats.host_page_writes += 1

    def commit_txn(self, txn_id: int) -> None:
        """Atomically publish every page of the transaction: one
        mapping-page program is the commit point, as in SHARE."""
        with self.faults.operation(
                "ftl.xcommit", tuple(self._txn_shadow.get(txn_id, ()))):
            self._commit_txn(txn_id)

    def _commit_txn(self, txn_id: int) -> None:
        shadow = self._txn_shadow.pop(txn_id, None)
        if shadow is None:
            raise FtlError(f"unknown transaction: {txn_id}")
        if not shadow:
            return
        self._flush_pending_trims()
        deltas: List[DeltaRecord] = []
        for lpn, ppn in sorted(shadow.items()):
            seq = self._next_seq()
            old = self.fwd.update(lpn, ppn)
            self._shadow_owner.pop(ppn, None)
            self.rev.set_primary(ppn, lpn)
            if old is not None and old != ppn:
                self._drop_ref(old, lpn)
            self._share_backed[lpn] = (ppn, seq)
            self._trim_tombstones.pop(lpn, None)
            deltas.append(DeltaRecord(KIND_XCOMMIT, lpn, old, ppn, seq))
        self.maplog.append_atomic(deltas)

    def abort_txn(self, txn_id: int) -> None:
        """Discard the transaction's shadow pages; old versions remain."""
        shadow = self._txn_shadow.pop(txn_id, None)
        if shadow is None:
            raise FtlError(f"unknown transaction: {txn_id}")
        for __, ppn in shadow.items():
            self._shadow_owner.pop(ppn, None)
            self._valid_count[self.geometry.block_of(ppn)] -= 1

    def txn_read(self, txn_id: int, lpn: int) -> Any:
        """Writer's view: the shadow copy when staged, else committed."""
        shadow = self._txn_shadow.get(txn_id)
        if shadow is None:
            raise FtlError(f"unknown transaction: {txn_id}")
        ppn = shadow.get(lpn)
        if ppn is not None:
            return self._read_page(ppn)
        return self.read(lpn)

    # --------------------------------------------------------- atomic write

    def write_atomic(self, items: Sequence[Tuple[int, Any]]) -> None:
        """Atomic multi-page write — the Section 6.1 baseline command.

        Programs every page *without* a spare-area stamp, then commits all
        the new mappings with one mapping-page program (the commit
        record).  A crash before the commit leaves every LPN at its old
        mapping, because the unstamped pages are invisible to recovery;
        after it, at the new mapping.  Unlike SHARE the page set is fixed
        at write time, and compaction-style remapping is impossible —
        exactly the flexibility gap the paper describes.
        """
        with self.faults.operation("ftl.awrite",
                                   tuple(lpn for lpn, __ in items)):
            self._write_atomic(items)

    def _write_atomic(self, items: Sequence[Tuple[int, Any]]) -> None:
        if not items:
            raise ValueError("empty atomic write")
        if len(items) > self._records_per_page:
            raise FtlError(
                f"atomic write of {len(items)} pages exceeds the commit "
                f"record capacity of {self._records_per_page}")
        lpns = [lpn for lpn, __ in items]
        if len(set(lpns)) != len(lpns):
            raise FtlError("duplicate LPN in atomic write")
        for lpn in lpns:
            self._check_lpn_range(lpn)
        self._pending_atomic.update(lpns)
        staged: List[Tuple[int, Optional[int]]] = []
        try:
            for lpn, data in items:
                self._ensure_free_space()
                self.faults.checkpoint("ftl.awrite_program")
                ppn = self._program_data(data, (), for_gc=False)
                self._note_work("host_program", ppn)
                old = self.fwd.update(lpn, ppn)
                self.rev.set_primary(ppn, lpn)
                self._valid_count[self.geometry.block_of(ppn)] += 1
                if old is not None and old != ppn:
                    self._drop_ref(old, lpn)
                staged.append((lpn, old))
                self.stats.host_page_writes += 1
            self._flush_pending_trims()
            deltas = []
            for lpn, old in staged:
                seq = self._next_seq()
                new_ppn = self.fwd.lookup(lpn)
                self._share_backed[lpn] = (new_ppn, seq)
                self._trim_tombstones.pop(lpn, None)
                deltas.append(DeltaRecord(KIND_AWRITE, lpn, old, new_ppn, seq))
            self.maplog.append_atomic(deltas)
        finally:
            self._pending_atomic.difference_update(lpns)

    # ---------------------------------------------------------------- trim

    def trim(self, lpn: int, count: int = 1) -> None:
        """Invalidate ``count`` LPNs starting at ``lpn`` (the TRIM command
        the paper contrasts SHARE with)."""
        with self.faults.operation("ftl.trim",
                                   tuple(range(lpn, lpn + max(count, 1)))):
            self._trim(lpn, count)

    def _trim(self, lpn: int, count: int) -> None:
        self._check_lpn_range(lpn, count)
        self.stats.trim_commands += 1
        for current in range(lpn, lpn + count):
            old = self.fwd.clear(current)
            if old is None:
                continue
            self._drop_ref(old, current)
            seq = self._next_seq()
            self._trim_tombstones[current] = seq
            self._share_backed.pop(current, None)
            self._pending_trims.append(
                DeltaRecord(KIND_TRIM, current, old, None, seq))
            self.stats.trim_pages += 1
        if len(self._pending_trims) >= self._records_per_page:
            self._flush_pending_trims()

    def flush(self) -> None:
        """Persist pending mapping changes (trim deltas).  Host writes and
        SHAREs are already durable when their call returns."""
        with self.faults.operation("ftl.flush"):
            self._flush_pending_trims()
        if self.telemetry.enabled:
            self._publish_l2p_gauges()

    def _flush_pending_trims(self) -> None:
        if not self._pending_trims:
            return
        pending, self._pending_trims = self._pending_trims, []
        self.maplog.append(pending)

    # --------------------------------------------------------------- share

    def share(self, dst_lpn: int, src_lpn: int, length: int = 1) -> None:
        """The paper's ``share(LPN1, LPN2, length)`` command."""
        self.share_batch(expand_range(dst_lpn, src_lpn, length))

    def share_batch(self, pairs: Sequence[SharePair]) -> None:
        """Atomically remap a batch of (destination, source) LPN pairs.

        Applies Section 4.2.2's protocol: update the DRAM mapping entries,
        then commit the whole batch's deltas with a single mapping-page
        program.  A power failure before that program leaves every
        destination at its old mapping; after it, at the new mapping.
        """
        with self.faults.operation(
                "ftl.share", tuple(pair.dst_lpn for pair in pairs)):
            self._share_batch(pairs)

    def _share_batch(self, pairs: Sequence[SharePair]) -> None:
        validate_batch(pairs, self._logical_pages, self.max_share_batch)
        # validate_batch bounds-checked every LPN: resolve both sides of
        # each pair through the strategy's bulk API (this loop is the
        # paper's "mapping-only" cost and the simulator's SHARE hot
        # path; on the flat backing resolve_pairs indexes the raw list).
        fwd = self.fwd
        resolved: List[Tuple[int, Optional[int], int]] = []
        for pair, (dst_lpn, old_ppn, src_ppn) in zip(
                pairs, fwd.resolve_pairs(pairs)):
            if src_ppn == UNMAPPED:
                raise ShareError(
                    f"source LPN {pair.src_lpn} is unmapped; nothing to share")
            resolved.append((dst_lpn,
                             None if old_ppn == UNMAPPED else old_ppn,
                             src_ppn))
        if self.config.share_overflow_policy == "copy":
            # Reserve DRAM share-table capacity up front; reconciliation
            # materialises a private copy (a real page program) per entry.
            for _ in range(len(resolved)):
                if self.rev.is_full:
                    self._reconcile_oldest_share()
        # Persist any pending trims first so the atomic batch page carries
        # only this command's deltas.
        self._flush_pending_trims()
        deltas: List[DeltaRecord] = []
        rev = self.rev
        share_backed = self._share_backed
        trim_tombstones = self._trim_tombstones
        splits_before = fwd.remap_splits
        for dst_lpn, old_ppn, src_ppn in resolved:
            seq = self._next_seq()
            fit_in_dram = rev.add_extra(src_ppn, dst_lpn)
            if not fit_in_dram:
                # 'log' policy: the entry is resolvable from the mapping
                # log this very batch persists; only GC pays a lookup.
                self.stats.share_log_spills += 1
                # Zero-cost ledger note: lets the device derive the
                # per-command spill delta from the work ledger alone.
                self._work.append(("log_spill", 0))
                self._m_share_log_spills.inc()
                self._m_share_spill_hwm.set(rev.spilled_peak)
            fwd.remap(dst_lpn, src_ppn)
            if old_ppn is not None and old_ppn != src_ppn:
                self._drop_ref(old_ppn, dst_lpn)
            share_backed[dst_lpn] = (src_ppn, seq)
            trim_tombstones.pop(dst_lpn, None)
            deltas.append(DeltaRecord(KIND_SHARE, dst_lpn, old_ppn, src_ppn, seq))
        self.maplog.append_atomic(deltas)
        self.stats.share_commands += 1
        self.stats.share_pairs += len(pairs)
        if self.telemetry.enabled:
            sampler = self._sampler
            if sampler is None or sampler.hit():
                observe_batch(self.telemetry.metrics, pairs,
                              remap_splits=fwd.remap_splits - splits_before)
                self._publish_l2p_gauges()

    def _reconcile_oldest_share(self) -> None:
        """Share table full: materialise a private copy for the oldest
        extra reference, freeing one table entry."""
        entry = self.rev.oldest_extra()
        if entry is None:
            raise FtlError("share table reported full but holds no extras")
        ppn, lpn = entry
        data = self._read_page(ppn)
        self._ensure_free_space()
        seq = self._next_seq()
        new_ppn = self._program_data(data, ((lpn, seq),), for_gc=False)
        self.fwd.update(lpn, new_ppn)
        self.rev.set_primary(new_ppn, lpn)
        self._valid_count[self.geometry.block_of(new_ppn)] += 1
        self._drop_ref(ppn, lpn)
        self._share_backed.pop(lpn, None)
        self.stats.share_spills += 1
        self._note_work("spill", new_ppn)
        self._m_share_spills.inc()

    # ------------------------------------------------------------- allocate

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _alloc_page(self, for_gc: bool) -> int:
        """Next free page of the GC active block, or of the next
        channel's host active block (channel-striped round-robin).

        Host allocation rotates one page at a time over the channels so
        sequential writes spread across all of them; a channel whose
        active block is full takes the first free block *of that
        channel*.  When a channel has no free block left the rotation
        skips it — allocation only fails when every channel is dry.  At
        ``channel_count == 1`` this is exactly the serial model's single
        active block with FIFO free-list replacement."""
        geometry = self.geometry
        if for_gc:
            active = self._active_gc
            if active is not None:
                used = self.nand.programmed_pages_in_block(active)
                if used < geometry.pages_per_block:
                    return geometry.first_ppn(active) + used
            if not self._free_blocks:
                raise OutOfSpaceError("no free blocks available for allocation")
            block = self._free_blocks.pop(0)
            self._m_free_blocks.set(len(self._free_blocks))
            self._active_gc = block
            return geometry.first_ppn(block)
        channels = geometry.channel_count
        for __ in range(channels):
            channel = self._host_cursor
            self._host_cursor = (self._host_cursor + 1) % channels
            active = self._active_host.get(channel)
            if active is not None:
                used = self.nand.programmed_pages_in_block(active)
                if used < geometry.pages_per_block:
                    return geometry.first_ppn(active) + used
            block = next((b for b in self._free_blocks
                          if b % channels == channel), None)
            if block is None:
                continue
            self._free_blocks.remove(block)
            self._m_free_blocks.set(len(self._free_blocks))
            self._active_host[channel] = block
            return geometry.first_ppn(block)
        raise OutOfSpaceError("no free blocks available for allocation")

    def _ensure_free_space(self) -> None:
        """Greedy GC trigger: collect victims while the free pool is at or
        below the low-water mark."""
        if self._in_gc:
            return
        while len(self._free_blocks) <= self.config.gc_low_water:
            made_progress = self._collect_victim()
            if not made_progress:
                break
            if len(self._free_blocks) >= self.config.gc_high_water:
                break

    # ------------------------------------------------------------------ GC

    def idle_gc(self, max_blocks: int = 1,
                min_invalid_fraction: float = 0.5) -> int:
        """Background garbage collection, run by the host during idle
        time: reclaim up to ``max_blocks`` blocks whose invalid fraction
        is at least ``min_invalid_fraction``, replenishing the free pool
        before foreground writes would have to stall for it.  Returns the
        number of blocks reclaimed."""
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1: {max_blocks}")
        if not 0.0 < min_invalid_fraction <= 1.0:
            raise ValueError(
                f"min_invalid_fraction must be in (0, 1]: "
                f"{min_invalid_fraction}")
        reclaimed = 0
        pages_per_block = self.geometry.pages_per_block
        for __ in range(max_blocks):
            candidates = self._gc_candidates()
            if not candidates:
                break
            victim = min(candidates, key=lambda b: (self._valid_count[b], b))
            programmed = self.nand.programmed_pages_in_block(victim)
            invalid = programmed - self._valid_count[victim]
            if programmed < pages_per_block or \
                    invalid < programmed * min_invalid_fraction:
                break
            self._reclaim_block(victim, is_gc_event=True)
            reclaimed += 1
        return reclaimed

    def _gc_candidates(self) -> List[int]:
        active = set(self._active_host.values())
        active.add(self._active_gc)
        free = set(self._free_blocks)
        return [b for b in self._data_blocks
                if b not in active and b not in free
                and b not in self._grown_bad
                and self.nand.programmed_pages_in_block(b) > 0]

    def _collect_victim(self) -> bool:
        """Collect the block with the fewest valid pages.  Returns False
        when no reclaimable victim exists.

        With wear leveling on, when the erase-count spread across
        candidates exceeds the configured threshold, the least-worn block
        (typically cold, mostly-valid data parked forever under pure
        greedy GC) is evacuated first so it rejoins the hot rotation —
        classic static wear leveling, spreading the lifespan benefit
        Section 5.3.1 attributes to SHARE across all blocks."""
        candidates = self._gc_candidates()
        if not candidates:
            return False
        if self.config.wear_leveling and len(candidates) > 1:
            erase_counts = self.nand.erase_counts
            coldest = min(candidates, key=lambda b: (erase_counts[b], b))
            spread = max(erase_counts[b] for b in candidates) \
                - erase_counts[coldest]
            if spread >= self.config.wear_delta_threshold:
                self._reclaim_block(coldest, is_gc_event=False)
                self.stats.wear_level_moves += 1
                self._work.append(("wear_move", 0))   # zero-cost note
                self._m_wear_moves.inc()
                candidates = self._gc_candidates()
                if not candidates:
                    return True
        victim = min(candidates, key=lambda b: (self._valid_count[b], b))
        programmed = self.nand.programmed_pages_in_block(victim)
        if self._valid_count[victim] >= programmed and \
                programmed >= self.geometry.pages_per_block:
            raise OutOfSpaceError(
                "all candidate blocks are fully valid — logical space "
                "overcommitted; write less or raise over-provisioning")
        self._reclaim_block(victim, is_gc_event=True)
        return True

    def _reclaim_block(self, block: int, is_gc_event: bool) -> None:
        """Evacuate valid pages, erase, and return ``block`` to the free
        pool.  The whole pass runs inside an ``ftl.gc`` span, so the
        copyback/erase work is attributed to whichever host command (and
        engine operation above it) triggered the collection.  With a
        profiler attached the pass is also charged to the ``ftl.gc``
        wall-clock phase (re-entrant: a reclaim cascading into another
        reclaim is timed once)."""
        pt_gc = self._pt_gc
        if pt_gc is None:
            self._do_reclaim_block(block, is_gc_event)
            return
        with pt_gc:
            self._do_reclaim_block(block, is_gc_event)

    def _do_reclaim_block(self, block: int, is_gc_event: bool) -> None:
        copybacks_before = self.stats.copyback_pages
        with self.telemetry.tracer.span(
                "ftl.gc", block=block,
                wear_leveling=not is_gc_event) as span:
            self._in_gc = True
            try:
                self._evacuate(block)
            except UncorrectableReadError:
                # A victim page died mid-evacuation: stop, retire the
                # block without erasing it.  Pages already moved are fine;
                # the dead page's mapping stays pinned here so host reads
                # surface the typed error, never wrong data.
                self._in_gc = False
                self._retire_block(block)
                span.set(retired=True,
                         copyback_pages=self.stats.copyback_pages
                         - copybacks_before)
                self._m_free_blocks.set(len(self._free_blocks))
                return
            finally:
                self._in_gc = False
            try:
                self.nand.erase(block)
            except EraseFailError:
                # The block has grown bad; every live page is already out
                # (evacuation succeeded), so retirement is bookkeeping.
                self.stats.erase_fails += 1
                self._m_erase_fails.inc()
                self._retire_block(block)
                span.set(retired=True,
                         copyback_pages=self.stats.copyback_pages
                         - copybacks_before)
                self._m_free_blocks.set(len(self._free_blocks))
                return
            self.stats.block_erases += 1
            self._note_work("erase", self.geometry.first_ppn(block))
            self._m_erases.inc()
            if is_gc_event:
                self.stats.gc_events += 1
                self._work.append(("gc_event", 0))   # zero-cost note
                self._m_gc_events.inc()
            self._valid_count[block] = 0
            for channel, active in self._active_host.items():
                if active == block:
                    self._active_host[channel] = None
            if block == self._active_gc:
                self._active_gc = None
            self._free_blocks.append(block)
            span.set(copyback_pages=self.stats.copyback_pages
                     - copybacks_before)
            self._m_free_blocks.set(len(self._free_blocks))

    def _evacuate(self, victim: int) -> None:
        geometry = self.geometry
        start = geometry.first_ppn(victim)
        for offset in range(self.nand.programmed_pages_in_block(victim)):
            ppn = start + offset
            if ppn in self._shadow_owner:
                self._move_shadow_page(ppn)
                continue
            if not self.rev.is_valid(ppn):
                continue
            if self.rev.spilled_refs_of(ppn):
                # Firmware must re-read the mapping log to learn the
                # overflowed reverse mappings of this page.
                self.stats.spill_lookups += 1
                self._note_work("spill_lookup", ppn)
                self._m_spill_lookups.inc()
            refs = sorted(self.rev.refs(ppn))
            data = self._read_page(ppn)
            # Pages of an in-flight atomic write stay unstamped so a crash
            # before their commit record keeps them invisible to recovery.
            stamps = tuple((lpn, self._next_seq()) for lpn in refs
                           if lpn not in self._pending_atomic)
            new_ppn = self._program_data(data, stamps, for_gc=True)
            self.rev.move_page(ppn, new_ppn, refs[0])
            self._m_share_spill_hwm.set(self.rev.spilled_peak)
            self._valid_count[victim] -= 1
            self._valid_count[geometry.block_of(new_ppn)] += 1
            stamped = {lpn for lpn, __ in stamps}
            fwd_update = self.fwd.update
            for lpn in refs:
                fwd_update(lpn, new_ppn)
                if lpn in stamped:
                    # The copy's spare stamps the LPN, so the mapping is
                    # recoverable from OOB again; drop the log backing.
                    self._share_backed.pop(lpn, None)
            self.stats.copyback_pages += 1
            self._note_work("copyback", new_ppn)
            self._m_copybacks.inc()

    def _move_shadow_page(self, ppn: int) -> None:
        """GC move of an uncommitted X-FTL shadow page: the copy stays
        unstamped (crash must keep it invisible) and the transaction's
        table follows the move."""
        txn_id, lpn = self._shadow_owner[ppn]
        data = self._read_page(ppn)
        new_ppn = self._program_data(data, (), for_gc=True)
        self._shadow_owner.pop(ppn)
        self._txn_shadow[txn_id][lpn] = new_ppn
        self._shadow_owner[new_ppn] = (txn_id, lpn)
        self._valid_count[self.geometry.block_of(ppn)] -= 1
        self._valid_count[self.geometry.block_of(new_ppn)] += 1
        self.stats.copyback_pages += 1
        self._note_work("copyback", new_ppn)
        self._m_copybacks.inc()

    # ------------------------------------------------------------ snapshot

    def _snapshot_records(self) -> List[DeltaRecord]:
        """Live log-backed assertions for map-log checkpointing.

        ``badblk`` records for grown-bad data blocks ride in every
        snapshot — retirement must survive the log compaction that erases
        the original record."""
        records = [DeltaRecord(KIND_BADBLK, block, None, None, seq)
                   for block, seq in sorted(self._grown_bad.items())]
        records.extend(DeltaRecord(KIND_SNAP, lpn, None, ppn, seq)
                       for lpn, (ppn, seq) in self._share_backed.items())
        records.extend(DeltaRecord(KIND_SNAP, lpn, None, None, seq)
                       for lpn, seq in self._trim_tombstones.items())
        records.sort(key=lambda record: record.seq)
        return records

    # ------------------------------------------------------------ recovery

    @classmethod
    def recover(cls, nand: NandArray, config: Optional[FtlConfig] = None,
                faults: FaultPlan = NO_FAULTS,
                telemetry=None) -> "PageMappingFtl":
        """Rebuild the full mapping state from the media after a crash.

        The newest assertion per LPN wins, where assertions come from data
        pages' spare stamps (normal writes and GC copies) and the mapping
        log (SHARE, TRIM, checkpoint snapshots).
        """
        ftl = cls(nand, config, faults, telemetry=telemetry)
        state = ftl._scan_media()
        ftl._apply_recovered(state)
        ftl.maplog.bind_to_end_of_log()
        return ftl

    def _scan_media(self) -> _RecoveredState:
        state = _RecoveredState()

        def assert_mapping(lpn: int, seq: int, ppn: Optional[int], source: str) -> None:
            current = state.winners.get(lpn)
            if current is None or seq > current[0]:
                state.winners[lpn] = (seq, ppn, source)
            state.max_seq = max(state.max_seq, seq)

        for block in self._data_blocks:
            for ppn, spare in self.nand.scan_block(block):
                if not isinstance(spare, tuple):
                    raise FtlError(f"malformed spare at PPN {ppn}: {spare!r}")
                for lpn, seq in spare:
                    assert_mapping(lpn, seq, ppn, "oob")
        records, bad_pages = MapLog.scan(self.nand, self.geometry,
                                         self._map_blocks,
                                         self.config.read_retries)
        if bad_pages:
            # Corrupt or unreadable log pages are skipped, not replayed;
            # the OOB scan above already covers stamped mappings, so the
            # loss degrades to the stamps' view of the affected LPNs.
            self.stats.corrupt_map_pages += bad_pages
            self._m_corrupt_map.inc(bad_pages)
        for record in records:
            if record.kind == KIND_BADBLK:
                # lpn carries the retired block number, not a mapping.
                current = state.grown_bad.get(record.lpn, -1)
                state.grown_bad[record.lpn] = max(current, record.seq)
                state.max_seq = max(state.max_seq, record.seq)
                continue
            source = record.kind
            assert_mapping(record.lpn, record.seq, record.new_ppn, source)
        return state

    def _apply_recovered(self, state: _RecoveredState) -> None:
        rev_entries: List[Tuple[int, int, bool]] = []
        by_ppn: Dict[int, List[int]] = {}
        for lpn, (seq, ppn, source) in sorted(state.winners.items()):
            if ppn is None:
                self._trim_tombstones[lpn] = seq
                continue
            if not self.nand.is_programmed(ppn):
                # Defensive: a stale assertion into an erased block loses.
                self._trim_tombstones[lpn] = seq
                continue
            if lpn >= self._logical_pages:
                raise FtlError(f"recovered LPN {lpn} outside logical space")
            self.fwd.update(lpn, ppn)
            by_ppn.setdefault(ppn, []).append(lpn)
            if source in (KIND_SHARE, KIND_SNAP, KIND_AWRITE, KIND_XCOMMIT):
                self._share_backed[lpn] = (ppn, seq)
        for ppn, lpns in by_ppn.items():
            stamped = set()
            spare = self.nand.read_spare(ppn)
            if isinstance(spare, tuple):
                stamped = {entry[0] for entry in spare}
            primary_candidates = [lpn for lpn in lpns if lpn in stamped]
            primary = primary_candidates[0] if primary_candidates else lpns[0]
            for lpn in lpns:
                rev_entries.append((ppn, lpn, lpn == primary))
        self.rev.rebuild(rev_entries)
        for ppn, lpns in by_ppn.items():
            self._valid_count[self.geometry.block_of(ppn)] += 1
        # Re-establish bad-block state from the persisted badblk records:
        # retired data blocks never rejoin the free pool or the actives,
        # retired map blocks leave the log rotation before appends resume.
        for block, seq in sorted(state.grown_bad.items()):
            if block in self._map_blocks:
                self.maplog.retire_map_block(block)
            else:
                self._grown_bad[block] = seq
        self.stats.grown_bad_blocks = len(self._grown_bad)
        self._free_blocks = [
            block for block in self._data_blocks
            if block not in self._grown_bad
            and self.nand.programmed_pages_in_block(block) == 0]
        partial = [block for block in self._data_blocks
                   if block not in self._grown_bad
                   and 0 < self.nand.programmed_pages_in_block(block)
                   < self.geometry.pages_per_block]
        # Reinstate partially-programmed blocks as actives: each joins
        # its channel's host slot when that slot is empty, the first
        # leftover becomes the GC active (at one channel this is exactly
        # the serial model's partial[0]/partial[1] assignment).  Further
        # partial blocks stay parked until GC reclaims them.
        channels = self.geometry.channel_count
        self._active_host = {ch: None for ch in range(channels)}
        self._host_cursor = 0
        self._active_gc = None
        for block in partial:
            channel = block % channels
            if self._active_host[channel] is None:
                self._active_host[channel] = block
            elif self._active_gc is None:
                self._active_gc = block
        # Rebuild the spare pool: one spare is consumed per grown-bad
        # block, so reserve whatever entitlement remains.
        self._spare_blocks = []
        spare_target = max(0, self.config.spare_block_count
                           - len(self._grown_bad))
        while len(self._spare_blocks) < spare_target and self._free_blocks:
            self._spare_blocks.append(self._free_blocks.pop())
        self._m_spare_pool.set(len(self._spare_blocks))
        self._m_free_blocks.set(len(self._free_blocks))
        self._seq = state.max_seq + 1
        self._publish_l2p_gauges()

    # --------------------------------------------------------------- debug

    def check_invariants(self) -> None:
        """Expensive consistency check used by tests: the reverse map must
        mirror the forward map exactly and valid counts must agree."""
        expected_refs: Dict[int, set] = {}
        for lpn, ppn in self.fwd.mapped_lpns():
            expected_refs.setdefault(ppn, set()).add(lpn)
        for ppn, lpns in expected_refs.items():
            if self.rev.refs(ppn) != lpns:
                raise AssertionError(
                    f"reverse map mismatch at PPN {ppn}: "
                    f"{self.rev.refs(ppn)} != {lpns}")
        valid_by_block: Dict[int, int] = {b: 0 for b in self._data_blocks}
        for ppn in expected_refs:
            valid_by_block[self.geometry.block_of(ppn)] += 1
        for block in self._data_blocks:
            if self._valid_count[block] != valid_by_block[block]:
                raise AssertionError(
                    f"valid count mismatch at block {block}: "
                    f"{self._valid_count[block]} != {valid_by_block[block]}")
