"""FTL tunables.

Defaults mirror the paper's OpenSSD prototype where it states them (share
table of 250 entries for 4 KiB mapping pages / 500 for 8 KiB) and use
conventional values elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes one delta record occupies in a mapping page: (LPN, old PPN,
#: new PPN, seq) at 4 bytes each as on the 32-bit Barefoot controller.
DELTA_RECORD_BYTES = 16


@dataclass(frozen=True)
class FtlConfig:
    """Knobs of :class:`repro.ftl.pagemap.PageMappingFtl`.

    Attributes
    ----------
    map_block_count:
        Blocks reserved (at the top of the array) for the mapping delta log.
    share_table_entries:
        Capacity of the reverse-mapping share table — the number of *extra*
        (beyond-the-first) LPN references physical pages may collectively
        hold.  Paper: 250 entries for 4 KiB pages, 500 for 8 KiB.
    gc_low_water / gc_high_water:
        Greedy GC starts when the free-block pool drops to ``gc_low_water``
        and collects victims until the pool reaches ``gc_high_water``.
    read_retries:
        How many extra read attempts firmware makes after an uncorrectable
        read before surfacing the error to the host.
    scrub_after_retry:
        Relocate (scrub) a page that needed read-retry to a fresh PPN, so
        a decaying page is healed before it dies outright.
    spare_block_count:
        Data blocks reserved as replacements for grown bad blocks.  The
        default of 0 keeps usable capacity identical to a fault-free
        device; harnesses that inject media faults opt in.
    program_retry_limit:
        How many fresh PPNs a single host write may try when programs keep
        failing before giving up with the typed error.
    l2p_strategy:
        Forward-map backing: ``"flat"`` (default; DRAM array, bit-identical
        to the pre-strategy FTL), ``"group"`` (GFTL per-group tables),
        ``"runlength"`` (CCFTL extent runs), or ``"delta"``
        (Page-Differential-Logging hybrid).  See
        :mod:`repro.ftl.mapping`; ``repro.ftl.mapping.resolve_l2p_strategy``
        reads the ``REPRO_L2P`` environment override.
    l2p_group_pages:
        Group size (LPNs per group) for the ``group`` and ``delta``
        backings; ignored by the others.
    """

    map_block_count: int = 4
    share_table_entries: int = 250
    gc_low_water: int = 3
    gc_high_water: int = 6
    share_overflow_policy: str = "log"
    wear_leveling: bool = True
    wear_delta_threshold: int = 16
    read_retries: int = 2
    scrub_after_retry: bool = True
    spare_block_count: int = 0
    program_retry_limit: int = 4
    l2p_strategy: str = "flat"
    l2p_group_pages: int = 64

    def __post_init__(self) -> None:
        if self.share_overflow_policy not in ("log", "copy"):
            raise ValueError(
                "share_overflow_policy must be 'log' (spill extra reverse "
                "mappings to the flash-resident mapping log) or 'copy' "
                f"(materialise private copies): {self.share_overflow_policy!r}")
        if self.wear_delta_threshold < 1:
            raise ValueError(
                f"wear_delta_threshold must be >= 1: {self.wear_delta_threshold}")
        if self.map_block_count < 1:
            raise ValueError(f"map_block_count must be >= 1: {self.map_block_count}")
        if self.share_table_entries < 1:
            raise ValueError(
                f"share_table_entries must be >= 1: {self.share_table_entries}")
        if self.gc_low_water < 2:
            raise ValueError(f"gc_low_water must be >= 2: {self.gc_low_water}")
        if self.gc_high_water <= self.gc_low_water:
            raise ValueError("gc_high_water must exceed gc_low_water")
        if self.read_retries < 0:
            raise ValueError(f"read_retries must be >= 0: {self.read_retries}")
        if self.spare_block_count < 0:
            raise ValueError(
                f"spare_block_count must be >= 0: {self.spare_block_count}")
        if self.program_retry_limit < 1:
            raise ValueError(
                f"program_retry_limit must be >= 1: {self.program_retry_limit}")
        from repro.ftl.mapping import STRATEGY_NAMES
        if self.l2p_strategy not in STRATEGY_NAMES:
            raise ValueError(
                f"l2p_strategy must be one of {', '.join(STRATEGY_NAMES)}: "
                f"{self.l2p_strategy!r}")
        if self.l2p_group_pages < 1:
            raise ValueError(
                f"l2p_group_pages must be >= 1: {self.l2p_group_pages}")

    def deltas_per_page(self, page_size: int) -> int:
        """How many delta records fit in one mapping page — the atomic
        SHARE batch limit (Section 4.2.2)."""
        return max(1, page_size // DELTA_RECORD_BYTES)
