"""A small embedded key-value database over the pager.

Page 0 holds the database header (B+tree root, allocator cursor, entry
count); the remaining pages hold B+tree nodes (reusing the InnoDB tree,
which only needs fetch/write/allocate callbacks).  Every transaction's
page set — including the header — commits atomically through the pager's
journal mode, so the whole database is crash-consistent under ROLLBACK,
WAL, and SHARE alike; only the I/O cost differs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.errors import EngineError
from repro.host.filesystem import HostFs
from repro.innodb.btree import BTree
from repro.innodb.page import Page
from repro.sim.faults import NO_FAULTS, FaultPlan
from repro.sqlitelike.pager import JournalMode, Pager

HEADER_PAGE = 0


class SqliteLikeDb:
    """Single-table embedded KV database with transactional commits."""

    def __init__(self, fs: HostFs, path: str, mode: JournalMode,
                 page_count: int = 4096, leaf_capacity: int = 16,
                 internal_fanout: int = 32,
                 faults: FaultPlan = NO_FAULTS,
                 _pager: Optional[Pager] = None) -> None:
        self.pager = _pager if _pager is not None else Pager(
            fs, path, mode, page_count, faults=faults)
        self._lsn = 0
        self._in_txn = False
        header = self.pager.read_page(HEADER_PAGE)
        if header is None:
            self._next_page = 1
            # Creating the tree writes its empty root, which implicitly
            # opens the bootstrap transaction via _ensure_txn_for_bootstrap.
            self.tree = self._make_tree(None, leaf_capacity, internal_fanout)
            self._write_header()
            self.pager.commit()
        else:
            __, root, next_page, leaf_capacity, internal_fanout = header
            self._next_page = next_page
            self.tree = self._make_tree(root, leaf_capacity, internal_fanout)

    def _make_tree(self, root: Optional[int], leaf_capacity: int,
                   internal_fanout: int) -> BTree:
        return BTree("kv",
                     fetch=self._fetch,
                     write=self._write,
                     allocate=self._allocate,
                     next_lsn=self._next_lsn,
                     leaf_capacity=leaf_capacity,
                     internal_fanout=internal_fanout,
                     root_page_id=root)

    # --------------------------------------------------- tree callbacks

    def _fetch(self, page_id: int) -> Page:
        payload = self.pager.read_page(page_id)
        if payload is None:
            raise EngineError(f"tree referenced unwritten page {page_id}")
        return Page(page_id, 0, payload)

    def _write(self, page: Page) -> None:
        self._ensure_txn_for_bootstrap()
        self.pager.write_page(page.page_id, page.payload)

    def _allocate(self) -> int:
        page_id = self._next_page
        self._next_page += 1
        if page_id >= self.pager.page_count:
            raise EngineError("database file is full")
        return page_id

    def _next_lsn(self) -> int:
        self._lsn += 1
        return self._lsn

    def _ensure_txn_for_bootstrap(self) -> None:
        # The tree constructor writes its empty root before the first
        # explicit transaction exists; fold that into the bootstrap commit.
        if self.pager._txn is None:
            self.pager.begin()

    def _write_header(self) -> None:
        self.pager.write_page(HEADER_PAGE, (
            "dbhdr", self.tree.root_page_id, self._next_page,
            self.tree.leaf_capacity, self.tree.internal_fanout))

    # ---------------------------------------------------------- txn API

    @contextmanager
    def transaction(self) -> Iterator["SqliteLikeDb"]:
        """All puts/deletes inside commit atomically (or not at all)."""
        if self._in_txn:
            raise EngineError("nested transactions are not supported")
        self._in_txn = True
        if self.pager._txn is None:
            self.pager.begin()
        try:
            yield self
        except BaseException:
            # Abort: discard dirty pages AND restore the in-memory tree
            # state (root pointer, allocator) from the committed header.
            self.pager.rollback_txn()
            header = self.pager.read_page(HEADER_PAGE)
            __, root, next_page, leaf_capacity, internal_fanout = header
            self._next_page = next_page
            self.tree = self._make_tree(root, leaf_capacity, internal_fanout)
            self._in_txn = False
            raise
        self._write_header()
        self.pager.commit()
        self._in_txn = False

    def put(self, key: Any, value: Any) -> None:
        if not self._in_txn:
            with self.transaction():
                self.tree.put(key, value)
            return
        self.tree.put(key, value)

    def delete(self, key: Any) -> bool:
        if not self._in_txn:
            with self.transaction():
                return self.tree.delete(key)
        return self.tree.delete(key)

    def get(self, key: Any) -> Optional[Any]:
        return self.tree.get(key)

    def items(self):
        return self.tree.items()

    # ---------------------------------------------------------- recovery

    @classmethod
    def open(cls, fs: HostFs, path: str, mode: JournalMode,
             page_count: int = 4096,
             faults: FaultPlan = NO_FAULTS) -> "SqliteLikeDb":
        """Reopen after a crash: the pager runs the journal-mode recovery,
        then the header page tells us the committed tree root."""
        pager = Pager.open(fs, path, mode, page_count, faults=faults)
        return cls(fs, path, mode, page_count, _pager=pager)
