"""SQLite-like embedded database on SHARE (the paper's Section 3.3 /
future-work claim).

SQLite guarantees atomic commits with either a *rollback journal* (write
before-images, then update in place) or a *write-ahead log* (append
after-images, checkpoint later) — both out-of-place schemes with the
write amplification the paper targets.  ``repro.sqlitelike`` implements a
pager with both classic modes plus a SHARE mode that "can simply turn
them off, because SHARE supports transactional atomicity and durability
at the storage level": dirty pages are staged into a scratch region of
the database file and published with one atomic SHARE batch.
"""

from repro.sqlitelike.db import SqliteLikeDb
from repro.sqlitelike.pager import JournalMode, Pager, PagerStats

__all__ = ["JournalMode", "Pager", "PagerStats", "SqliteLikeDb"]
