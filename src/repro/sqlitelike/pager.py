"""The pager: page-granular transactions with three journal modes.

* ``ROLLBACK`` — SQLite's default: before-images of every page a
  transaction touches are written (and fsynced) to a side journal before
  the in-place updates; recovery restores the before-images if the
  journal is still live.  Two-plus writes per page.
* ``WAL`` — after-images are appended to a write-ahead log; a commit
  frame seals them; a checkpoint later copies the newest frames into the
  database file.  Still roughly two writes per page over time.
* ``SHARE`` — the paper's mode: dirty pages are staged into a scratch
  region at the end of the database file, then one SHARE batch remaps the
  home pages onto the staged copies.  One write per page, atomic at the
  device, no journal files at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.errors import EngineError, PowerFailure, ResilienceError
from repro.host.file import File
from repro.host.filesystem import HostFs
from repro.host.resilience import ShareGuard
from repro.sim.faults import NO_FAULTS, FaultPlan

JOURNAL_SUFFIX = "-journal"
WAL_SUFFIX = "-wal"

_JHDR_LIVE = "jhdr-live"
_JHDR_EMPTY = "jhdr-empty"
_WAL_FRAME = "wal-frame"
_WAL_COMMIT = "wal-commit"


class JournalMode(Enum):
    """How commits achieve atomicity.

    ``XFTL`` is the Section 6.2 baseline: the device's transactional
    interface stages in-place writes and commits them atomically — no
    journal files and no scratch region, but it requires the X-FTL
    command set instead of the simpler SHARE command.
    """

    ROLLBACK = "rollback"
    WAL = "wal"
    SHARE = "share"
    XFTL = "xftl"


@dataclass
class PagerStats:
    """Commit-path accounting for the mode comparison."""

    commits: int = 0
    pages_committed: int = 0
    journal_page_writes: int = 0
    db_page_writes: int = 0
    wal_frames: int = 0
    checkpoints: int = 0
    share_pairs: int = 0


class Pager:
    """Fixed-size page file with transactional page updates."""

    def __init__(self, fs: HostFs, path: str, mode: JournalMode,
                 page_count: int, scratch_pages: int = 64,
                 wal_checkpoint_frames: int = 256,
                 faults: FaultPlan = NO_FAULTS,
                 resilience: Optional[ShareGuard] = None,
                 _existing: bool = False) -> None:
        if page_count < 1:
            raise ValueError(f"page_count must be >= 1: {page_count}")
        if scratch_pages < 1:
            raise ValueError(f"scratch_pages must be >= 1: {scratch_pages}")
        self.fs = fs
        self.path = path
        self.mode = mode
        self.page_count = page_count
        self.scratch_pages = scratch_pages
        self.wal_checkpoint_frames = wal_checkpoint_frames
        self.faults = faults
        self.resilience = resilience or ShareGuard(fs.ssd, engine="sqlite")
        self.stats = PagerStats()
        self.db_file = fs.open(path) if _existing else fs.create(path)
        total = page_count + (scratch_pages if mode is JournalMode.SHARE else 0)
        self.db_file.fallocate(total)
        self._scratch_cursor = 0
        self._txn: Optional[Dict[int, Any]] = None
        self._cache: Dict[int, Any] = {}
        self._wal_index: Dict[int, int] = {}
        self._wal_frame_count = 0
        self.journal_file: Optional[File] = None
        self.wal_file: Optional[File] = None
        if mode is JournalMode.ROLLBACK:
            journal_path = path + JOURNAL_SUFFIX
            self.journal_file = (fs.open(journal_path) if fs.exists(journal_path)
                                 else fs.create(journal_path))
        elif mode is JournalMode.SHARE:
            # A journal only exists if a past commit degraded to rollback
            # mode (SHARE unavailable); it must be reopened so recovery
            # can see a live header from a crashed fallback commit.
            journal_path = path + JOURNAL_SUFFIX
            if fs.exists(journal_path):
                self.journal_file = fs.open(journal_path)
        elif mode is JournalMode.WAL:
            wal_path = path + WAL_SUFFIX
            self.wal_file = (fs.open(wal_path) if fs.exists(wal_path)
                             else fs.create(wal_path))

    # ------------------------------------------------------------- reading

    def _check_pgno(self, pgno: int) -> None:
        if not 0 <= pgno < self.page_count:
            raise EngineError(
                f"page {pgno} outside database of {self.page_count} pages")

    def read_page(self, pgno: int) -> Optional[Any]:
        """Newest committed (or transaction-local) content of a page,
        None if never written."""
        self._check_pgno(pgno)
        if self._txn is not None and pgno in self._txn:
            return self._txn[pgno]
        if pgno in self._cache:
            return self._cache[pgno]
        data = self._read_committed(pgno)
        if data is not None:
            self._cache[pgno] = data
        return data

    def _read_committed(self, pgno: int) -> Optional[Any]:
        wal_block = self._wal_index.get(pgno)
        if wal_block is not None:
            record = self.wal_file.pread_block(wal_block)
            return record[2]
        lpn = self.db_file.block_lpn(pgno)
        if not self.fs.ssd.ftl.is_mapped(lpn):
            return None
        return self.db_file.pread_block(pgno)

    # ------------------------------------------------------- transactions

    def begin(self) -> None:
        if self._txn is not None:
            raise EngineError("transaction already open")
        self._txn = {}

    def write_page(self, pgno: int, data: Any) -> None:
        self._check_pgno(pgno)
        if self._txn is None:
            raise EngineError("write outside a transaction")
        self._txn[pgno] = data

    def rollback_txn(self) -> None:
        """Abort: forget transaction-local changes."""
        self._txn = None

    def commit(self) -> None:
        if self._txn is None:
            raise EngineError("no transaction to commit")
        dirty = self._txn
        if not dirty:
            self._txn = None
            return
        if self.mode is JournalMode.ROLLBACK:
            self._commit_rollback(dirty)
        elif self.mode is JournalMode.WAL:
            self._commit_wal(dirty)
        elif self.mode is JournalMode.XFTL:
            self._commit_xftl(dirty)
        else:
            self._commit_share(dirty)
        self._cache.update(dirty)
        self._txn = None
        self.stats.commits += 1
        self.stats.pages_committed += len(dirty)

    # ------------------------------------------------------ rollback mode

    def _commit_rollback(self, dirty: Dict[int, Any]) -> None:
        journal = self.journal_file
        before = [(pgno, self._read_committed(pgno)) for pgno in sorted(dirty)]
        images = [("jimg", pgno, image) for pgno, image in before]
        journal.fallocate(1 + len(images))
        # Images first, live header last: the header is the journal's
        # commit point.  Were it written first, a crash between header
        # and images would leave a live header over a previous commit's
        # stale before-images — and recovery would roll back acknowledged
        # data.
        journal.pwrite_blocks(1, images)
        journal.fsync()
        journal.pwrite_block(0, (_JHDR_LIVE, len(images)))
        journal.fsync()
        self.stats.journal_page_writes += len(images) + 1
        self.faults.checkpoint("sqlite.after_journal")
        for pgno in sorted(dirty):
            self._in_place_write(pgno, dirty[pgno])
        self.db_file.fsync()
        self.faults.checkpoint("sqlite.after_db_write")
        journal.pwrite_block(0, (_JHDR_EMPTY, 0))
        journal.fsync()
        self.stats.journal_page_writes += 1

    def _in_place_write(self, pgno: int, data: Any) -> None:
        """Home-location write with the torn-write window."""
        try:
            self.faults.checkpoint("sqlite.torn_window")
        except PowerFailure:
            from repro.innodb.page import Page, torn_copy
            self.db_file.pwrite_block(
                pgno, torn_copy(Page(pgno, 0, data)))
            raise
        self.db_file.pwrite_block(pgno, data)
        self.stats.db_page_writes += 1

    # ----------------------------------------------------------- WAL mode

    def _commit_wal(self, dirty: Dict[int, Any]) -> None:
        wal = self.wal_file
        start = wal.block_count
        frames = [(_WAL_FRAME, pgno, dirty[pgno]) for pgno in sorted(dirty)]
        frames.append((_WAL_COMMIT, len(frames), None))
        wal.fallocate(start + len(frames))
        wal.pwrite_blocks(start, frames)
        wal.fsync()
        self.faults.checkpoint("sqlite.after_wal_commit")
        for offset, pgno in enumerate(sorted(dirty)):
            self._wal_index[pgno] = start + offset
        self._wal_frame_count += len(frames)
        self.stats.wal_frames += len(frames)
        if self._wal_frame_count >= self.wal_checkpoint_frames:
            self.checkpoint_wal()

    def checkpoint_wal(self) -> None:
        """Copy the newest WAL frames into the database file and reset the
        log (SQLite's checkpoint)."""
        if self.mode is not JournalMode.WAL or not self._wal_index:
            self._wal_frame_count = 0
            return
        for pgno, wal_block in sorted(self._wal_index.items()):
            record = self.wal_file.pread_block(wal_block)
            self.db_file.pwrite_block(pgno, record[2])
            self.stats.db_page_writes += 1
        self.db_file.fsync()
        self.faults.checkpoint("sqlite.after_wal_checkpoint")
        self.wal_file.truncate_blocks(0)
        self.wal_file.fsync()
        self._wal_index.clear()
        self._wal_frame_count = 0
        self.stats.checkpoints += 1

    # ---------------------------------------------------------- XFTL mode

    def _commit_xftl(self, dirty: Dict[int, Any]) -> None:
        """The transactional-FTL way: stage in-place writes under a
        device transaction, commit atomically inside the firmware."""
        ssd = self.fs.ssd
        txn_id = ssd.begin_txn()
        for pgno in sorted(dirty):
            self.faults.checkpoint("sqlite.xftl_write")
            ssd.write_txn(txn_id, self.db_file.block_lpn(pgno), dirty[pgno])
            self.stats.db_page_writes += 1
        self.faults.checkpoint("sqlite.xftl_commit")
        ssd.commit_txn(txn_id)

    # --------------------------------------------------------- SHARE mode

    def _commit_share(self, dirty: Dict[int, Any]) -> None:
        """Stage into the scratch tail, fsync, publish with SHARE."""
        pgnos = sorted(dirty)
        if len(pgnos) > self.scratch_pages:
            raise EngineError(
                f"transaction of {len(pgnos)} pages exceeds the scratch "
                f"region of {self.scratch_pages}")
        if self._scratch_cursor + len(pgnos) > self.scratch_pages:
            self._scratch_cursor = 0
        scratch_base = self.page_count + self._scratch_cursor
        self.db_file.pwrite_blocks(scratch_base,
                                   [dirty[pgno] for pgno in pgnos])
        self.db_file.fsync()
        self.stats.db_page_writes += len(pgnos)
        self.faults.checkpoint("sqlite.after_share_stage")
        ranges = [(pgno, scratch_base + index, 1)
                  for index, pgno in enumerate(pgnos)]
        try:
            self.resilience.share_file_ranges(self.db_file, self.db_file,
                                              ranges)
        except ResilienceError:
            # SHARE unavailable: finish this commit in rollback-journal
            # mode.  The journal file is created on first use and kept;
            # opening the pager in SHARE mode replays a live journal, so
            # a crash mid-fallback recovers exactly like ROLLBACK mode.
            # The staged scratch copies are stranded either way.
            self.faults.checkpoint("sqlite.share_fallback")
            self.resilience.record_fallback()
            self._ensure_journal()
            self._commit_rollback(dirty)
            self._scratch_cursor += len(pgnos)
            return
        self.stats.share_pairs += len(pgnos)
        self._scratch_cursor += len(pgnos)

    def _ensure_journal(self) -> None:
        if self.journal_file is None:
            journal_path = self.path + JOURNAL_SUFFIX
            self.journal_file = (self.fs.open(journal_path)
                                 if self.fs.exists(journal_path)
                                 else self.fs.create(journal_path))

    # ------------------------------------------------------------ recovery

    @classmethod
    def open(cls, fs: HostFs, path: str, mode: JournalMode, page_count: int,
             scratch_pages: int = 64, wal_checkpoint_frames: int = 256,
             faults: FaultPlan = NO_FAULTS) -> "Pager":
        """Reopen after a crash, running the mode's recovery protocol."""
        pager = cls(fs, path, mode, page_count, scratch_pages,
                    wal_checkpoint_frames, faults, _existing=fs.exists(path))
        if mode is JournalMode.ROLLBACK:
            pager._recover_rollback()
        elif mode is JournalMode.WAL:
            pager._recover_wal()
        elif mode is JournalMode.SHARE:
            # SHARE itself needs no host-side recovery (the device's
            # atomic mapping commit was the commit point), but a commit
            # that degraded to the rollback journal might have died
            # mid-write — replay its journal like ROLLBACK mode would.
            pager._recover_rollback()
        # XFTL needs no host-side recovery at all.
        return pager

    def _recover_rollback(self) -> None:
        journal = self.journal_file
        if journal is None or journal.block_count == 0:
            return
        lpn = journal.block_lpn(0)
        if not self.fs.ssd.ftl.is_mapped(lpn):
            return
        header = journal.pread_block(0)
        if not (isinstance(header, tuple) and header[0] == _JHDR_LIVE):
            return
        count = header[1]
        # A live header is only published after its images are durable,
        # so every image block must be mapped; an unmapped one means the
        # journal predates that protocol (or the media lost pages) and
        # must not be replayed.
        if any(not self.fs.ssd.ftl.is_mapped(journal.block_lpn(block))
               for block in range(1, 1 + count)):
            return
        restored = 0
        for block in range(1, 1 + count):
            record = journal.pread_block(block)
            __, pgno, image = record
            if image is None:
                continue  # page had never been written; leave it
            self.db_file.pwrite_block(pgno, image)
            restored += 1
        self.db_file.fsync()
        journal.pwrite_block(0, (_JHDR_EMPTY, 0))
        journal.fsync()

    def _recover_wal(self) -> None:
        wal = self.wal_file
        pending: List = []
        for block in range(wal.block_count):
            lpn = wal.block_lpn(block)
            if not self.fs.ssd.ftl.is_mapped(lpn):
                break
            record = wal.pread_block(block)
            if record[0] == _WAL_FRAME:
                pending.append((block, record[1]))
            elif record[0] == _WAL_COMMIT:
                for frame_block, pgno in pending:
                    self._wal_index[pgno] = frame_block
                self._wal_frame_count += len(pending) + 1
                pending = []
        # Frames after the last commit record are uncommitted: ignored.
