"""End-to-end soak tests: several subsystems sharing one device through
one filesystem, interleaved with compactions, crashes, and recovery —
the kind of cross-module interaction no unit test reaches."""

import random

import pytest

from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.lsm import CompactionMode, LsmConfig, LsmStore
from repro.sim.clock import SimClock
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.ssd.device import Ssd, SsdConfig


def big_fs(clock):
    geometry = FlashGeometry(page_size=4096, pages_per_block=64,
                             block_count=512, overprovision_ratio=0.1)
    ssd = Ssd(clock, SsdConfig(geometry=geometry, timing=FAST_TIMING,
                               ftl=FtlConfig(map_block_count=16)))
    return ssd, HostFs(ssd, FsConfig())


def test_two_couch_stores_share_one_device(clock):
    ssd, fs = big_fs(clock)
    a = CouchStore(fs, "/a", CommitMode.SHARE,
                   CouchConfig(leaf_capacity=4, internal_fanout=8,
                               prealloc_blocks=64))
    b = CouchStore(fs, "/b", CommitMode.ORIGINAL,
                   CouchConfig(leaf_capacity=4, internal_fanout=8,
                               prealloc_blocks=64))
    rng = random.Random(1)
    model_a, model_b = {}, {}
    for i in range(600):
        key = rng.randrange(60)
        a.set(key, ("a", i))
        model_a[key] = ("a", i)
        b.set(key, ("b", i))
        model_b[key] = ("b", i)
        if i % 16 == 15:
            a.commit()
            b.commit()
    a.commit()
    b.commit()
    a, __ = compact(a, clock)
    b, __ = compact(b, clock)
    for key, value in model_a.items():
        assert a.get(key) == value
    for key, value in model_b.items():
        assert b.get(key) == value
    ssd.ftl.check_invariants()


def test_couch_lsm_sqlite_coexist_and_survive_crash(clock):
    ssd, fs = big_fs(clock)
    couch = CouchStore(fs, "/couch", CommitMode.SHARE,
                       CouchConfig(leaf_capacity=4, internal_fanout=8,
                                   prealloc_blocks=64))
    lsm = LsmStore(fs, "lsm", CompactionMode.SHARE, clock,
                   LsmConfig(memtable_limit=64, l0_limit=2,
                             block_capacity=4))
    sqlite = SqliteLikeDb(fs, "/sq.db", JournalMode.SHARE, page_count=1024,
                          leaf_capacity=4, internal_fanout=4)
    rng = random.Random(2)
    for i in range(400):
        key = rng.randrange(80)
        couch.set(key, ("c", i))
        lsm.put(key, ("l", i))
        sqlite.put(key, ("s", i))
        if i % 20 == 19:
            couch.commit()
            lsm.commit()
    couch.commit()
    lsm.commit()
    couch_state = dict(couch.items())
    lsm_state = lsm.items()
    sqlite_state = dict(sqlite.items())
    ssd.power_cycle()
    couch2 = CouchStore.reopen(fs, "/couch", CommitMode.SHARE, couch.config)
    lsm2 = LsmStore.reopen(fs, "lsm", CompactionMode.SHARE, clock)
    sqlite2 = SqliteLikeDb.open(fs, "/sq.db", JournalMode.SHARE,
                                page_count=1024)
    assert dict(couch2.items()) == couch_state
    assert lsm2.items() == lsm_state
    assert dict(sqlite2.items()) == sqlite_state
    ssd.ftl.check_invariants()


def test_repeated_compaction_cycles_never_leak_space(clock):
    """Churn + compact in a loop: recycled extents, TRIMmed shares, and
    GC must reach a steady state instead of exhausting the device."""
    ssd, fs = big_fs(clock)
    store = CouchStore(fs, "/db", CommitMode.SHARE,
                       CouchConfig(leaf_capacity=4, internal_fanout=8,
                                   prealloc_blocks=64))
    for key in range(100):
        store.set(key, ("v0", key))
    store.commit()
    for cycle in range(6):
        for key in range(100):
            store.set(key, ("cycle", cycle, key))
            if key % 25 == 24:
                store.commit()
        store.commit()
        store, __ = compact(store, clock)
        assert store.get(50) == ("cycle", cycle, 50)
    # The device still has healthy free space after 6 full rewrites.
    assert ssd.ftl.free_block_count > 2
    ssd.ftl.check_invariants()


def test_reflink_clones_of_live_database(clock):
    """Snapshot a SQLite-like database with reflink_copy mid-run, keep
    writing to the original, and open the frozen clone afterwards."""
    ssd, fs = big_fs(clock)
    db = SqliteLikeDb(fs, "/live.db", JournalMode.SHARE, page_count=512,
                      leaf_capacity=4, internal_fanout=4)
    for i in range(120):
        db.put(i % 40, ("v1", i))
    fs.reflink_copy("/live.db", "/snap.db")
    for i in range(120):
        db.put(i % 40, ("v2", i))
    snapshot = SqliteLikeDb.open(fs, "/snap.db", JournalMode.SHARE,
                                 page_count=512)
    # The snapshot shows the v1 state; the live database shows v2.
    for key in range(40):
        assert snapshot.get(key) == ("v1", 80 + key)
        assert db.get(key) == ("v2", 80 + key)
    ssd.ftl.check_invariants()
