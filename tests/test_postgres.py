"""Tests for the PostgreSQL engine and its full_page_writes behaviour."""

import pytest

from repro.errors import EngineError
from repro.postgres.engine import PostgresConfig, PostgresEngine
from repro.postgres.wal import Wal
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


def make_engine(clock, fpw=True, checkpoint_every=100):
    data = Ssd(clock, small_ssd_config())
    wal = Ssd(clock, small_ssd_config())
    engine = PostgresEngine(data, wal, PostgresConfig(
        full_page_writes=fpw,
        checkpoint_interval_commits=checkpoint_every))
    return data, wal, engine


class TestWal:
    def test_records_accumulate(self, clock):
        device = Ssd(clock, small_ssd_config())
        wal = Wal(device, record_bytes=100)
        for i in range(5):
            wal.log_record(("r", i))
        assert wal.stats.records == 5
        assert wal.stats.record_bytes == 500

    def test_commit_writes_pages(self, clock):
        device = Ssd(clock, small_ssd_config())
        wal = Wal(device, record_bytes=100)
        for i in range(50):
            wal.log_record(("r", i))
        wal.commit()
        assert wal.stats.wal_pages_written >= 2  # 5000 bytes / 4096

    def test_small_commits_rewrite_partial_page(self, clock):
        device = Ssd(clock, small_ssd_config())
        wal = Wal(device, record_bytes=100)
        pages = 0
        for i in range(5):
            wal.log_record(("r", i))
            wal.commit()
        # Every tiny commit costs one page write (the partial rewrite).
        assert wal.stats.wal_pages_written == 5

    def test_full_page_image_counts_whole_page(self, clock):
        device = Ssd(clock, small_ssd_config())
        wal = Wal(device, record_bytes=100, data_page_bytes=4096)
        wal.log_full_page_image(3, "before")
        wal.commit()
        assert wal.stats.full_page_bytes == 4096
        assert wal.stats.total_bytes == 4096

    def test_bad_record_bytes(self, clock):
        device = Ssd(clock, small_ssd_config())
        with pytest.raises(ValueError):
            Wal(device, record_bytes=0)


class TestEngine:
    def test_create_and_update(self, clock):
        __, __, engine = make_engine(clock)
        engine.create_table("t", rows=100)
        engine.update_row("t", 5, "v1")
        assert engine.read_row("t", 5) == "v1"
        engine.commit()
        assert engine.read_row("t", 5) == "v1"

    def test_duplicate_table_rejected(self, clock):
        __, __, engine = make_engine(clock)
        engine.create_table("t", rows=10)
        with pytest.raises(EngineError):
            engine.create_table("t", rows=10)

    def test_row_bounds_checked(self, clock):
        __, __, engine = make_engine(clock)
        engine.create_table("t", rows=10)
        with pytest.raises(EngineError):
            engine.update_row("t", 1000, "x")
        with pytest.raises(EngineError):
            engine.read_row("missing", 0)

    def test_checkpoint_flushes_dirty_pages(self, clock):
        data, __, engine = make_engine(clock)
        engine.create_table("t", rows=100)
        writes_before = data.stats.host_write_pages
        engine.update_row("t", 1, "x")
        engine.checkpoint()
        assert data.stats.host_write_pages > writes_before
        assert not engine._dirty

    def test_checkpoint_interval(self, clock):
        __, __, engine = make_engine(clock, checkpoint_every=10)
        engine.create_table("t", rows=100)
        for i in range(25):
            engine.update_row("t", i % 100, i)
            engine.commit()
        assert engine.checkpoints == 2


class TestFullPageWrites:
    def test_first_touch_logs_image_when_on(self, clock):
        __, __, engine = make_engine(clock, fpw=True)
        engine.create_table("t", rows=100)
        engine.update_row("t", 1, "a")
        engine.update_row("t", 2, "b")  # same page: no second image
        assert engine.wal_stats.full_page_images == 1
        engine.update_row("t", 50, "c")  # different page
        assert engine.wal_stats.full_page_images == 2

    def test_images_reset_at_checkpoint(self, clock):
        __, __, engine = make_engine(clock, fpw=True)
        engine.create_table("t", rows=100)
        engine.update_row("t", 1, "a")
        engine.checkpoint()
        engine.update_row("t", 1, "b")
        assert engine.wal_stats.full_page_images == 2

    def test_off_logs_no_images(self, clock):
        __, __, engine = make_engine(clock, fpw=False)
        engine.create_table("t", rows=100)
        for i in range(50):
            engine.update_row("t", i, i)
            engine.commit()
        assert engine.wal_stats.full_page_images == 0
        assert engine.wal_stats.records == 50

    def test_off_writes_much_less_wal(self, clock):
        """The paper's in-text observation: WAL shrinks by roughly the
        volume of the page images."""
        from repro.sim.clock import SimClock
        volumes = {}
        for fpw in (True, False):
            local = SimClock()
            __, __, engine = make_engine(local, fpw=fpw,
                                         checkpoint_every=1000)
            engine.create_table("t", rows=3200)
            for i in range(400):
                engine.update_row("t", (i * 37) % 3200, i)
                engine.commit()
            volumes[fpw] = engine.wal_stats.total_bytes
        assert volumes[True] > volumes[False] * 3

    def test_off_is_faster(self, clock):
        from repro.sim.clock import SimClock
        times = {}
        for fpw in (True, False):
            local = SimClock()
            __, __, engine = make_engine(local, fpw=fpw,
                                         checkpoint_every=1000)
            engine.create_table("t", rows=3200)
            local.reset()
            for i in range(400):
                engine.update_row("t", (i * 37) % 3200, i)
                engine.commit()
            times[fpw] = local.now_seconds
        assert times[False] < times[True]
