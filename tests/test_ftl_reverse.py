"""Unit tests for the reverse map and the bounded share table."""

import pytest

from repro.ftl.reverse import ReverseMap


@pytest.fixture
def rev():
    return ReverseMap(capacity=4)


def test_primary_reference_free(rev):
    rev.set_primary(10, 1)
    assert rev.refs(10) == {1}
    assert rev.primary_of(10) == 1
    assert rev.extra_entries == 0
    assert rev.is_valid(10)


def test_extra_consumes_capacity(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    assert rev.refs(10) == {1, 2}
    assert rev.extra_entries == 1
    assert rev.ref_count(10) == 2


def test_duplicate_extra_is_noop(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    rev.add_extra(10, 2)
    assert rev.extra_entries == 1


def test_drop_extra_frees_capacity(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    became_invalid = rev.drop_ref(10, 2)
    assert not became_invalid
    assert rev.extra_entries == 0
    assert rev.refs(10) == {1}


def test_drop_last_ref_invalidates(rev):
    rev.set_primary(10, 1)
    assert rev.drop_ref(10, 1)
    assert not rev.is_valid(10)
    assert rev.refs(10) == set()


def test_primary_departure_promotes_extra(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    rev.drop_ref(10, 1)
    assert rev.primary_of(10) == 2
    # Promotion releases the share-table entry.
    assert rev.extra_entries == 0


def test_is_full(rev):
    rev.set_primary(10, 0)
    for lpn in range(1, 5):
        rev.add_extra(10, lpn)
    assert rev.is_full
    assert rev.oldest_extra() == (10, 1)


def test_oldest_extra_fifo(rev):
    rev.set_primary(10, 0)
    rev.set_primary(11, 5)
    rev.add_extra(10, 1)
    rev.add_extra(11, 6)
    assert rev.oldest_extra() == (10, 1)
    rev.drop_ref(10, 1)
    assert rev.oldest_extra() == (11, 6)


def test_oldest_extra_none_when_empty(rev):
    assert rev.oldest_extra() is None


def test_move_page_transfers_refs(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    refs = rev.move_page(10, 20, new_primary=1)
    assert sorted(refs) == [1, 2]
    assert rev.refs(10) == set()
    assert rev.refs(20) == {1, 2}
    assert rev.primary_of(20) == 1
    assert rev.extra_entries == 1  # LPN 2 still occupies a share entry


def test_move_page_bad_primary_rejected(rev):
    rev.set_primary(10, 1)
    with pytest.raises(ValueError):
        rev.move_page(10, 20, new_primary=9)


def test_set_primary_clears_previous_life(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    rev.set_primary(10, 3)  # page reprogrammed after erase
    assert rev.refs(10) == {3}
    assert rev.extra_entries == 0


def test_rebuild(rev):
    rev.rebuild([(10, 1, True), (10, 2, False), (11, 3, True)])
    assert rev.refs(10) == {1, 2}
    assert rev.primary_of(10) == 1
    assert rev.extra_entries == 1
    assert rev.primary_of(11) == 3


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ReverseMap(0)


class TestSpillChurn:
    """Overflow behaviour under sustained add/drop churn past capacity."""

    def test_overflow_spills_and_stays_resolvable(self, rev):
        rev.set_primary(10, 0)
        fits = [rev.add_extra(10, lpn) for lpn in range(1, 7)]
        assert fits == [True] * 4 + [False] * 2
        assert rev.extra_entries == 4
        assert rev.spilled_entries == 2
        assert rev.spilled_refs_of(10) == {5, 6}
        # Spilled references still count as references: the page stays
        # valid and refs() reports them.
        assert rev.refs(10) == set(range(7))
        assert rev.is_spilled(10, 5) and not rev.is_spilled(10, 1)

    def test_fifo_order_survives_interleaved_churn(self, rev):
        for ppn in range(10, 16):
            rev.set_primary(ppn, ppn * 100)
        for ppn in range(10, 14):
            rev.add_extra(ppn, ppn)           # fills the table: 10..13
        rev.add_extra(14, 14)                 # spills
        assert rev.oldest_extra() == (10, 10)
        rev.drop_ref(11, 11)                  # free a middle entry
        rev.add_extra(15, 15)                 # takes the freed slot
        # FIFO order is insertion order of the surviving DRAM entries,
        # not PPN order: 10, 12, 13, then the late arrival 15.
        order = []
        while rev.oldest_extra() is not None:
            ppn, lpn = rev.oldest_extra()
            order.append((ppn, lpn))
            rev.drop_ref(ppn, lpn)
        assert order == [(10, 10), (12, 12), (13, 13), (15, 15)]

    def test_drop_spilled_ref_releases_overflow(self, rev):
        rev.set_primary(10, 0)
        for lpn in range(1, 6):
            rev.add_extra(10, lpn)
        assert rev.spilled_entries == 1
        assert not rev.drop_ref(10, 5)
        assert rev.spilled_entries == 0
        assert rev.spilled_refs_of(10) == set()
        assert rev.refs(10) == {0, 1, 2, 3, 4}

    def test_peak_is_monotone_high_water_mark(self, rev):
        rev.set_primary(10, 0)
        for lpn in range(1, 8):               # 4 fit, 3 spill
            rev.add_extra(10, lpn)
        assert rev.spilled_entries == 3
        assert rev.spilled_peak == 3
        rev.drop_ref(10, 7)
        rev.drop_ref(10, 6)
        # Draining the overflow does not lower the high-water mark.
        assert rev.spilled_entries == 1
        assert rev.spilled_peak == 3
        rev.add_extra(10, 8)                  # back up to 2 — below peak
        assert rev.spilled_entries == 2
        assert rev.spilled_peak == 3
        rev.add_extra(10, 9)
        rev.add_extra(10, 11)                 # 4 — new peak
        assert rev.spilled_peak == 4

    def test_move_page_overflow_counts_toward_peak(self, rev):
        rev.set_primary(10, 0)
        for lpn in range(1, 5):
            rev.add_extra(10, lpn)            # table now full
        rev.set_primary(20, 50)
        rev.add_extra(20, 51)                 # spills (peak 1)
        assert rev.spilled_peak == 1
        # GC moves the spilled page; the table is still full of PPN 10's
        # entries, so the moved extra lands in overflow at its new home.
        refs = rev.move_page(20, 21, new_primary=50)
        assert refs == [50, 51]
        assert rev.is_spilled(21, 51)
        assert rev.spilled_entries == 1
        assert rev.spilled_peak == 1

    def test_rebuild_resets_peak_for_new_incarnation(self, rev):
        rev.set_primary(10, 0)
        for lpn in range(1, 7):
            rev.add_extra(10, lpn)
        assert rev.spilled_peak == 2
        rev.rebuild([(10, 1, True), (10, 2, False)])
        assert rev.spilled_entries == 0
        assert rev.spilled_peak == 0
        entries = [(20, 0, True)] + [(20, lpn, False) for lpn in range(1, 6)]
        rev.rebuild(entries)
        assert rev.spilled_peak == 1
