"""Unit tests for the reverse map and the bounded share table."""

import pytest

from repro.ftl.reverse import ReverseMap


@pytest.fixture
def rev():
    return ReverseMap(capacity=4)


def test_primary_reference_free(rev):
    rev.set_primary(10, 1)
    assert rev.refs(10) == {1}
    assert rev.primary_of(10) == 1
    assert rev.extra_entries == 0
    assert rev.is_valid(10)


def test_extra_consumes_capacity(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    assert rev.refs(10) == {1, 2}
    assert rev.extra_entries == 1
    assert rev.ref_count(10) == 2


def test_duplicate_extra_is_noop(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    rev.add_extra(10, 2)
    assert rev.extra_entries == 1


def test_drop_extra_frees_capacity(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    became_invalid = rev.drop_ref(10, 2)
    assert not became_invalid
    assert rev.extra_entries == 0
    assert rev.refs(10) == {1}


def test_drop_last_ref_invalidates(rev):
    rev.set_primary(10, 1)
    assert rev.drop_ref(10, 1)
    assert not rev.is_valid(10)
    assert rev.refs(10) == set()


def test_primary_departure_promotes_extra(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    rev.drop_ref(10, 1)
    assert rev.primary_of(10) == 2
    # Promotion releases the share-table entry.
    assert rev.extra_entries == 0


def test_is_full(rev):
    rev.set_primary(10, 0)
    for lpn in range(1, 5):
        rev.add_extra(10, lpn)
    assert rev.is_full
    assert rev.oldest_extra() == (10, 1)


def test_oldest_extra_fifo(rev):
    rev.set_primary(10, 0)
    rev.set_primary(11, 5)
    rev.add_extra(10, 1)
    rev.add_extra(11, 6)
    assert rev.oldest_extra() == (10, 1)
    rev.drop_ref(10, 1)
    assert rev.oldest_extra() == (11, 6)


def test_oldest_extra_none_when_empty(rev):
    assert rev.oldest_extra() is None


def test_move_page_transfers_refs(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    refs = rev.move_page(10, 20, new_primary=1)
    assert sorted(refs) == [1, 2]
    assert rev.refs(10) == set()
    assert rev.refs(20) == {1, 2}
    assert rev.primary_of(20) == 1
    assert rev.extra_entries == 1  # LPN 2 still occupies a share entry


def test_move_page_bad_primary_rejected(rev):
    rev.set_primary(10, 1)
    with pytest.raises(ValueError):
        rev.move_page(10, 20, new_primary=9)


def test_set_primary_clears_previous_life(rev):
    rev.set_primary(10, 1)
    rev.add_extra(10, 2)
    rev.set_primary(10, 3)  # page reprogrammed after erase
    assert rev.refs(10) == {3}
    assert rev.extra_entries == 0


def test_rebuild(rev):
    rev.rebuild([(10, 1, True), (10, 2, False), (11, 3, True)])
    assert rev.refs(10) == {1, 2}
    assert rev.primary_of(10) == 1
    assert rev.extra_entries == 1
    assert rev.primary_of(11) == 3


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ReverseMap(0)
