"""Event scheduler: determinism, ordering, cancellation, clock motion."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler


def make():
    clock = SimClock()
    return clock, EventScheduler(clock)


class TestOrdering:
    def test_fires_in_time_order(self):
        clock, events = make()
        fired = []
        events.at(30, lambda: fired.append("c"))
        events.at(10, lambda: fired.append("a"))
        events.at(20, lambda: fired.append("b"))
        events.run_until(100)
        assert fired == ["a", "b", "c"]
        assert clock.now_us == 30

    def test_same_timestamp_fires_in_registration_order(self):
        # The load-bearing determinism property: ties break by seq, never
        # by heap-internal order.
        clock, events = make()
        fired = []
        for tag in range(8):
            events.at(50, lambda t=tag: fired.append(t))
        events.run_until(50)
        assert fired == list(range(8))

    def test_identical_runs_fire_identically(self):
        # Two schedulers fed the same schedule produce the same firing
        # sequence — the property that makes benchmark runs reproducible.
        import random

        def one_run(seed):
            clock, events = make()
            fired = []
            rng = random.Random(seed)
            for i in range(200):
                events.at(rng.randrange(1000),
                          lambda i=i: fired.append(i))
            events.run_until(1000)
            return fired

        assert one_run(99) == one_run(99)

    def test_past_event_fires_without_rewinding_clock(self):
        clock, events = make()
        clock.advance(500)
        fired = []
        events.at(100, lambda: fired.append("late"))
        events.run_until(clock.now_us)
        assert fired == ["late"]
        assert clock.now_us == 500

    def test_run_until_stops_at_horizon(self):
        clock, events = make()
        fired = []
        events.at(10, lambda: fired.append("in"))
        events.at(99, lambda: fired.append("out"))
        events.run_until(50)
        assert fired == ["in"]
        assert events.pending == 1

    def test_event_scheduled_by_callback_fires_in_same_run(self):
        clock, events = make()
        fired = []
        events.at(10, lambda: events.at(20, lambda: fired.append("chained")))
        events.run_until(100)
        assert fired == ["chained"]


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        clock, events = make()
        fired = []
        event = events.at(10, lambda: fired.append("no"))
        assert events.cancel(event)
        events.run_until(100)
        assert fired == []

    def test_double_cancel_returns_false(self):
        clock, events = make()
        event = events.at(10, lambda: None)
        assert events.cancel(event)
        assert not events.cancel(event)

    def test_power_cycle_cancels_inflight_completions(self):
        # A crashed device's scheduled completions must not fire after
        # reboot: power_cycle cancels them through the scheduler.
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.ftl.config import FtlConfig
        from repro.ssd.device import Ssd, SsdConfig
        from repro.ssd.ncq import DeviceSession, issuing

        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4),
            queue_depth=4))
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            for lpn in range(6):
                ssd.write(lpn, ("v", lpn))
        assert ssd._inflight
        pending_before = ssd.events.pending
        ssd.power_cycle()
        assert ssd._inflight == []
        # Draining after the cycle fires nothing from the old timeline.
        fired_before = ssd.events.fired
        ssd.events.run_until(10**9)
        assert ssd.events.fired == fired_before
        assert pending_before > 0


class TestValidation:
    def test_negative_time_rejected(self):
        clock, events = make()
        with pytest.raises(ValueError):
            events.at(-1, lambda: None)

    def test_negative_delay_rejected(self):
        clock, events = make()
        with pytest.raises(ValueError):
            events.after(-5, lambda: None)

    def test_clock_reset_drops_device_queue_state(self):
        # The harness resets the clock between warm-up and measurement;
        # devices must not stay anchored to the old timeline.
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.ftl.config import FtlConfig
        from repro.ssd.device import Ssd, SsdConfig

        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4)))
        for lpn in range(4):
            ssd.write(lpn, ("v", lpn))
        assert clock.now_us > 0
        clock.reset()
        assert ssd.ncq.inflight == 0
        assert ssd.channels.horizon_us() == 0
        before = clock.now_us
        ssd.write(9, ("post", 9))
        assert clock.now_us > before   # commands run on the new timeline
