"""Event scheduler: determinism, ordering, cancellation, clock motion."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler


def make():
    clock = SimClock()
    return clock, EventScheduler(clock)


class TestOrdering:
    def test_fires_in_time_order(self):
        clock, events = make()
        fired = []
        events.at(30, lambda: fired.append("c"))
        events.at(10, lambda: fired.append("a"))
        events.at(20, lambda: fired.append("b"))
        events.run_until(100)
        assert fired == ["a", "b", "c"]
        assert clock.now_us == 30

    def test_same_timestamp_fires_in_registration_order(self):
        # The load-bearing determinism property: ties break by seq, never
        # by heap-internal order.
        clock, events = make()
        fired = []
        for tag in range(8):
            events.at(50, lambda t=tag: fired.append(t))
        events.run_until(50)
        assert fired == list(range(8))

    def test_identical_runs_fire_identically(self):
        # Two schedulers fed the same schedule produce the same firing
        # sequence — the property that makes benchmark runs reproducible.
        import random

        def one_run(seed):
            clock, events = make()
            fired = []
            rng = random.Random(seed)
            for i in range(200):
                events.at(rng.randrange(1000),
                          lambda i=i: fired.append(i))
            events.run_until(1000)
            return fired

        assert one_run(99) == one_run(99)

    def test_past_event_fires_without_rewinding_clock(self):
        clock, events = make()
        clock.advance(500)
        fired = []
        events.at(100, lambda: fired.append("late"))
        events.run_until(clock.now_us)
        assert fired == ["late"]
        assert clock.now_us == 500

    def test_run_until_stops_at_horizon(self):
        clock, events = make()
        fired = []
        events.at(10, lambda: fired.append("in"))
        events.at(99, lambda: fired.append("out"))
        events.run_until(50)
        assert fired == ["in"]
        assert events.pending == 1

    def test_event_scheduled_by_callback_fires_in_same_run(self):
        clock, events = make()
        fired = []
        events.at(10, lambda: events.at(20, lambda: fired.append("chained")))
        events.run_until(100)
        assert fired == ["chained"]


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        clock, events = make()
        fired = []
        event = events.at(10, lambda: fired.append("no"))
        assert events.cancel(event)
        events.run_until(100)
        assert fired == []

    def test_double_cancel_returns_false(self):
        clock, events = make()
        event = events.at(10, lambda: None)
        assert events.cancel(event)
        assert not events.cancel(event)

    def test_power_cycle_cancels_inflight_completions(self):
        # A crashed device's scheduled completions must not fire after
        # reboot: power_cycle cancels them through the scheduler.
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.ftl.config import FtlConfig
        from repro.ssd.device import Ssd, SsdConfig
        from repro.ssd.ncq import DeviceSession, issuing

        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4),
            queue_depth=4))
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            for lpn in range(6):
                ssd.write(lpn, ("v", lpn))
        assert ssd._inflight
        pending_before = ssd.events.pending
        ssd.power_cycle()
        assert ssd._inflight == []
        # Draining after the cycle fires nothing from the old timeline.
        fired_before = ssd.events.fired
        ssd.events.run_until(10**9)
        assert ssd.events.fired == fired_before
        assert pending_before > 0


class TestRoundingConvention:
    def test_after_rounds_half_microseconds_like_clock_advance(self):
        # Serial-vs-event bit-identity depends on after(), SimClock.advance
        # and the device's _price_media agreeing on int(round()) — Python's
        # round-half-to-even ("banker's") rounding.  Pin the convention on
        # the half-microsecond boundary where conventions differ.
        expected = [0, 2, 2, 4, 4, 6]   # banker's rounding of 0.5 .. 5.5
        for whole, rounded in zip(range(6), expected):
            delay = whole + 0.5
            clock, events = make()
            event = events.after(delay, lambda: None)
            assert event.time_us == rounded, delay
            reference = SimClock()
            assert reference.advance(delay) == rounded, delay

    def test_price_media_total_uses_the_same_rounding(self):
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.ftl.config import FtlConfig
        from repro.ssd.device import Ssd, SsdConfig

        ssd = Ssd(SimClock(), SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4)))
        for whole, rounded in zip(range(6), [0, 2, 2, 4, 4, 6]):
            dram_us, pieces = ssd._price_media(whole + 0.5, [])
            assert dram_us == rounded, whole + 0.5
            assert pieces == {}


class TestBatchedDrain:
    def make_queued_ssd(self, plan=None):
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.ftl.config import FtlConfig
        from repro.sim.faults import FaultPlan
        from repro.ssd.device import Ssd, SsdConfig

        plan = plan or FaultPlan()
        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4),
            queue_depth=4), faults=plan)
        return clock, plan, ssd

    def test_same_timestamp_completions_drain_in_submission_order(self):
        # Two identical commands submitted at the same cursor complete at
        # the identical timestamp; the drain must deliver them in
        # (time_us, seq) order — observable through the deferred-ack
        # journal: the *second* submission must be the last one acked.
        from repro.ssd.ncq import DeviceSession, issuing

        clock, plan, ssd = self.make_queued_ssd()
        plan.enable_trace()
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            ssd.trim(1)
            session.now_us = 0          # same arrival for the second command
            ssd.trim(2)
        completions = sorted(item[0] for item in ssd._inflight)
        assert len(set(completions)) == 1   # genuinely the same timestamp
        ssd.events.run_until(completions[-1])
        acks = [point for point in plan.trace
                if point == "device.trim.ack"]
        assert acks == ["device.trim.ack", "device.trim.ack"]
        acked = plan.last_acked_op()
        assert acked is not None and acked.lpns == (2,)

    def test_power_cycle_cancels_queued_drain_event(self):
        # The single drain event must die with the power cycle: nothing
        # from the old timeline fires, and the device re-arms cleanly.
        from repro.ssd.ncq import DeviceSession, issuing

        clock, plan, ssd = self.make_queued_ssd()
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            for lpn in range(3):
                ssd.write(lpn, ("v", lpn))
        assert ssd._drain_event is not None
        ssd.power_cycle()
        assert ssd._drain_event is None
        fired_before = ssd.events.fired
        ssd.events.run_until(10**9)
        assert ssd.events.fired == fired_before
        # The device still works on the post-cycle timeline.
        ssd.write(7, ("post", 7))
        assert ssd.read(7) == ("post", 7)

    def test_freelist_never_resurrects_a_cancelled_event(self):
        # A recycled Event always starts with a fresh cancelled flag: the
        # old cancellation must not suppress the event that reuses the
        # object.
        clock, events = make()
        fired = []
        stale = events.at(10, lambda: fired.append("old"))
        assert events.cancel(stale)
        events.run_until(20)            # pops the tombstone -> freelist
        fresh = events.at(30, lambda: fired.append("new"))
        assert fresh is stale           # the object was recycled
        assert not fresh.cancelled
        events.run_until(30)
        assert fired == ["new"]

    def test_run_until_idle_detects_non_progress(self):
        clock, events = make()

        def respawn():
            events.at(clock.now_us, respawn, label="spinner")

        events.at(5, respawn, label="spinner")
        with pytest.raises(RuntimeError, match="spinner"):
            events.run_until_idle(stall_limit=50)

    def test_run_until_idle_allows_long_advancing_runs(self):
        # stall_limit bounds events fired *without the clock moving*, not
        # the total: a long legitimately-advancing run never trips it.
        clock, events = make()
        count = [0]

        def step():
            count[0] += 1
            if count[0] < 500:
                events.at(clock.now_us + 1, step)

        events.at(1, step)
        assert events.run_until_idle(stall_limit=10) == 500


class TestValidation:
    def test_negative_time_rejected(self):
        clock, events = make()
        with pytest.raises(ValueError):
            events.at(-1, lambda: None)

    def test_negative_delay_rejected(self):
        clock, events = make()
        with pytest.raises(ValueError):
            events.after(-5, lambda: None)

    def test_clock_reset_drops_device_queue_state(self):
        # The harness resets the clock between warm-up and measurement;
        # devices must not stay anchored to the old timeline.
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.ftl.config import FtlConfig
        from repro.ssd.device import Ssd, SsdConfig

        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4)))
        for lpn in range(4):
            ssd.write(lpn, ("v", lpn))
        assert clock.now_us > 0
        clock.reset()
        assert ssd.ncq.inflight == 0
        assert ssd.channels.horizon_us() == 0
        before = clock.now_us
        ssd.write(9, ("post", 9))
        assert clock.now_us > before   # commands run on the new timeline
