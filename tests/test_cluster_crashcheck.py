"""Tests for the cluster kill sweep: enumeration counts real ack
boundaries, a capped sweep fires a failover at every explored boundary
with zero ``no_lost_acked_write`` violations, and the harness's oracle
actually catches a lost write when one is manufactured."""

from repro.crashcheck import (ClusterHarness, ClusterOccurrence,
                              enumerate_acked_writes, explore_cluster,
                              explore_cluster_occurrence)
from repro.obs.sinks import MemorySink
from repro.sim.faults import FaultPlan

SWEEP_POINTS = 8


def test_enumeration_counts_acked_writes():
    acked = enumerate_acked_writes()
    assert acked > 50    # the 150-step mix is write-heavy
    # Deterministic workload: a second enumeration agrees.
    assert enumerate_acked_writes() == acked


def test_capped_sweep_is_clean():
    sink = MemorySink()
    report = explore_cluster(max_points=SWEEP_POINTS, sink=sink)
    assert report.ok, report.failures
    assert len(report.results) == SWEEP_POINTS
    assert all(result.fired for result in report.results)
    assert all(result.failovers >= 1 for result in report.results)
    rows = [r for r in sink.records if r["type"] == "clustercheck"]
    assert len(rows) == SWEEP_POINTS
    summary = sink.records[-1]
    assert summary["type"] == "clustercheck-summary"
    assert summary["violations"] == 0
    assert summary["acked_writes"] == report.acked_writes


def test_single_occurrence_detail():
    result = explore_cluster_occurrence(ClusterHarness,
                                        ClusterOccurrence(nth=5))
    assert result.fired
    assert result.victim is not None
    assert result.ok, result.violations
    record = result.as_record("cluster-small")
    assert record["type"] == "clustercheck"
    assert record["nth"] == 5
    assert record["ok"] is True


def test_oracle_catches_a_lost_write():
    """Sanity-check the checker itself: silently dropping an acked key
    from the tier must surface as a no_lost_acked_write violation."""
    harness = ClusterHarness(FaultPlan())
    harness.run()
    key = next(k for k, v in harness.durable.items() if v is not None)
    pair = harness.router.pair_for(key)
    del pair.directory[key]    # the tier "forgets" an acked write
    harness.recover()
    violations = harness.check_engine()
    assert any("no_lost_acked_write" in v and repr(key) in v
               for v in violations)
