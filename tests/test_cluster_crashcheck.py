"""Tests for the cluster kill sweep: enumeration counts real ack
boundaries, a capped sweep fires a failover at every explored boundary
with zero ``no_lost_acked_write`` violations, and the harness's oracle
actually catches a lost write when one is manufactured.  Plus the PR 9
dimensions: the media-storm sweep (NAND faults instead of kills at ack
boundaries, proactive promotions expected), the seeded chaos scheduler
(randomized kills + storms + busy faults + a mid-rebalance kill, three
invariants checked), and the CLI entry points for both."""

import json

from repro.crashcheck import (ClusterHarness, ClusterOccurrence,
                              enumerate_acked_writes, explore_cluster,
                              explore_cluster_media,
                              explore_cluster_occurrence, run_chaos_seed)
from repro.obs.sinks import MemorySink
from repro.sim.faults import FaultPlan
from repro.tools.crashexplore import main as crashexplore_main

SWEEP_POINTS = 8
CHAOS_TEST_STEPS = 80


def test_enumeration_counts_acked_writes():
    acked = enumerate_acked_writes()
    assert acked > 50    # the 150-step mix is write-heavy
    # Deterministic workload: a second enumeration agrees.
    assert enumerate_acked_writes() == acked


def test_capped_sweep_is_clean():
    sink = MemorySink()
    report = explore_cluster(max_points=SWEEP_POINTS, sink=sink)
    assert report.ok, report.failures
    assert len(report.results) == SWEEP_POINTS
    assert all(result.fired for result in report.results)
    assert all(result.failovers >= 1 for result in report.results)
    rows = [r for r in sink.records if r["type"] == "clustercheck"]
    assert len(rows) == SWEEP_POINTS
    summary = sink.records[-1]
    assert summary["type"] == "clustercheck-summary"
    assert summary["violations"] == 0
    assert summary["acked_writes"] == report.acked_writes


def test_single_occurrence_detail():
    result = explore_cluster_occurrence(ClusterHarness,
                                        ClusterOccurrence(nth=5))
    assert result.fired
    assert result.victim is not None
    assert result.ok, result.violations
    record = result.as_record("cluster-small")
    assert record["type"] == "clustercheck"
    assert record["nth"] == 5
    assert record["ok"] is True


def test_oracle_catches_a_lost_write():
    """Sanity-check the checker itself: silently dropping an acked key
    from the tier must surface as a no_lost_acked_write violation."""
    harness = ClusterHarness(FaultPlan())
    harness.run()
    key = next(k for k, v in harness.durable.items() if v is not None)
    pair = harness.router.pair_for(key)
    del pair.directory[key]    # the tier "forgets" an acked write
    harness.recover()
    violations = harness.check_engine()
    assert any("no_lost_acked_write" in v and repr(key) in v
               for v in violations)


# ------------------------------------------------------- media sweep


def test_media_sweep_trips_proactive_promotions():
    sink = MemorySink()
    report = explore_cluster_media(max_points=6, sink=sink)
    assert report.ok, report.failures
    assert len(report.results) == 6
    assert all(result.fired for result in report.results)
    # The whole point of the dimension: storms promote *proactively*,
    # without a single kill, at least somewhere in the sweep.
    assert report.proactive_promotions >= 1
    rows = [r for r in sink.records if r["type"] == "clustermedia"]
    assert len(rows) == 6
    summary = sink.records[-1]
    assert summary["type"] == "clustermedia-summary"
    assert summary["violations"] == 0


# ------------------------------------------------------ chaos scheduler


def test_chaos_seed_is_clean_and_deterministic():
    first = run_chaos_seed(1, steps=CHAOS_TEST_STEPS)
    assert first.violations == (), first.violations
    assert first.acked_writes > 0
    assert first.ryw_checks > 0
    second = run_chaos_seed(1, steps=CHAOS_TEST_STEPS)
    # Same seed, same universe: every counter agrees.
    assert second == first


def test_chaos_seeds_differ():
    a = run_chaos_seed(1, steps=CHAOS_TEST_STEPS)
    b = run_chaos_seed(2, steps=CHAOS_TEST_STEPS)
    assert a.violations == b.violations == ()
    assert (a.kills, a.storms, a.busy_faults, a.acked_writes) \
        != (b.kills, b.storms, b.busy_faults, b.acked_writes)


def test_chaos_record_shape():
    result = run_chaos_seed(3, steps=CHAOS_TEST_STEPS)
    record = result.as_record("cluster-chaos")
    assert record["type"] == "clusterchaos"
    assert record["seed"] == 3
    assert record["ok"] is True


# ----------------------------------------------------------------- CLI


def test_cli_cluster_media_smoke(tmp_path, capsys):
    out = tmp_path / "media.jsonl"
    rc = crashexplore_main(["--cluster-media", "--max-points", "6",
                            "--out", str(out), "--quiet"])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "proactive" in captured
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert rows[-1]["type"] == "clustermedia-summary"
    assert rows[-1]["ok"] is True


def test_cli_cluster_chaos_smoke(tmp_path, capsys):
    out = tmp_path / "chaos.jsonl"
    rc = crashexplore_main(["--cluster-chaos", "--seeds", "1",
                            "--out", str(out), "--quiet"])
    assert rc == 0
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    summary = rows[-1]
    assert summary["type"] == "clusterchaos-summary"
    assert summary["ok"] is True
    assert summary["seeds"] == 1
    assert summary["violations"] == 0


def test_cli_rejects_combined_cluster_dimensions(tmp_path):
    rc = crashexplore_main(["--cluster-media", "--cluster-chaos",
                            "--out", str(tmp_path / "x.jsonl")])
    assert rc == 2
