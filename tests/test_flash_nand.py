"""Unit tests for the NAND array rules: no overwrite, erase-before-reuse,
in-order programming, and wear accounting."""

import pytest

from repro.errors import EraseError, ProgramError, ReadError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray, PageState


@pytest.fixture
def nand():
    return NandArray(FlashGeometry.small())


def test_program_then_read(nand):
    nand.program(0, "data", spare=((7, 1),))
    assert nand.read(0) == "data"
    assert nand.read_spare(0) == ((7, 1),)
    assert nand.state_of(0) is PageState.PROGRAMMED


def test_read_erased_rejected(nand):
    with pytest.raises(ReadError):
        nand.read(0)
    with pytest.raises(ReadError):
        nand.read_spare(0)


def test_no_overwrite(nand):
    nand.program(0, "a")
    with pytest.raises(ProgramError):
        nand.program(0, "b")


def test_in_order_programming_enforced(nand):
    nand.program(0, "a")
    with pytest.raises(ProgramError):
        nand.program(2, "c")  # skips offset 1
    nand.program(1, "b")


def test_programs_independent_across_blocks(nand):
    ppb = nand.geometry.pages_per_block
    nand.program(0, "a")
    nand.program(ppb, "b")  # first page of block 1 is fine
    assert nand.read(ppb) == "b"


def test_erase_resets_block(nand):
    nand.program(0, "a")
    nand.program(1, "b")
    nand.erase(0)
    assert nand.state_of(0) is PageState.ERASED
    assert nand.programmed_pages_in_block(0) == 0
    nand.program(0, "again")
    assert nand.read(0) == "again"


def test_erase_counts_accumulate(nand):
    nand.erase(0)
    nand.erase(0)
    nand.erase(1)
    assert nand.erase_counts[0] == 2
    assert nand.erase_counts[1] == 1
    assert nand.total_erases == 3
    assert nand.max_erase_count == 2


def test_scan_block_returns_program_order(nand):
    nand.program(0, "a", spare="s0")
    nand.program(1, "b", spare="s1")
    assert nand.scan_block(0) == [(0, "s0"), (1, "s1")]


def test_scan_empty_block(nand):
    assert nand.scan_block(5) == []


def test_op_counters(nand):
    nand.program(0, "a")
    nand.read(0)
    nand.read(0)
    nand.erase(0)
    assert nand.total_programs == 1
    assert nand.total_reads == 2
    assert nand.total_erases == 1


def test_wear_summary(nand):
    nand.erase(0)
    summary = nand.wear_summary()
    assert summary["max"] == 1
    assert summary["min"] == 0
    assert 0 < summary["mean"] < 1


def test_out_of_range_rejected(nand):
    total = nand.geometry.total_pages
    with pytest.raises(ValueError):
        nand.program(total, "x")
    with pytest.raises(ValueError):
        nand.erase(nand.geometry.block_count)
