"""Tests for the atomic-write baseline command (Section 6.1) and the
reflink-style file copy built on SHARE (Section 1)."""

import pytest

from repro.errors import DeviceError, FtlError, PowerFailure
from repro.host.filesystem import FsConfig, HostFs
from repro.host.ioctl import atomic_write_ioctl
from repro.innodb.engine import FlushMode
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.ssd.device import Ssd

from conftest import small_ssd_config


class TestWriteAtomicCommand:
    def test_applies_all_pages(self, ssd):
        ssd.write_atomic([(10, "a"), (11, "b"), (12, "c")])
        assert [ssd.read(10 + i) for i in range(3)] == ["a", "b", "c"]

    def test_overwrites_previous_content(self, ssd):
        ssd.write(10, "old")
        ssd.write_atomic([(10, "new"), (11, "fresh")])
        assert ssd.read(10) == "new"

    def test_survives_power_cycle(self, ssd):
        ssd.write_atomic([(10, "a"), (11, "b")])
        ssd.power_cycle()
        assert ssd.read(10) == "a"
        assert ssd.read(11) == "b"
        ssd.ftl.check_invariants()

    def test_crash_before_commit_reverts_all(self, clock):
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        ssd.write(10, "old-a")
        ssd.write(11, "old-b")
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            ssd.write_atomic([(10, "new-a"), (11, "new-b")])
        ssd.power_cycle()
        assert ssd.read(10) == "old-a"
        assert ssd.read(11) == "old-b"
        ssd.ftl.check_invariants()

    def test_crash_mid_programs_reverts_all(self, clock):
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        ssd.write(10, "old-a")
        ssd.write(11, "old-b")
        faults.arm(PowerFailAfter("ftl.awrite_program", nth=2))
        with pytest.raises(PowerFailure):
            ssd.write_atomic([(10, "new-a"), (11, "new-b")])
        ssd.power_cycle()
        assert ssd.read(10) == "old-a"
        assert ssd.read(11) == "old-b"

    def test_crash_after_commit_keeps_all(self, clock):
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        faults.arm(PowerFailAfter("maplog.after_commit"))
        with pytest.raises(PowerFailure):
            ssd.write_atomic([(10, "a"), (11, "b")])
        ssd.power_cycle()
        assert ssd.read(10) == "a"
        assert ssd.read(11) == "b"

    def test_empty_rejected(self, ssd):
        with pytest.raises(DeviceError):
            ssd.write_atomic([])

    def test_duplicate_lpn_rejected(self, ssd):
        with pytest.raises(FtlError):
            ssd.write_atomic([(5, "a"), (5, "b")])

    def test_oversized_batch_rejected(self, ssd):
        items = [(i, i) for i in range(ssd.max_share_batch + 1)]
        with pytest.raises(FtlError):
            ssd.write_atomic(items)

    def test_gc_during_batch_preserves_atomicity(self, clock):
        # Fill the device so allocation during the batch triggers GC,
        # then crash before commit: old state must survive.
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        hot = ssd.logical_pages // 3
        for i in range(ssd.logical_pages * 2):
            ssd.write(i % hot, ("churn", i))
        for lpn in (hot + 1, hot + 2):
            ssd.write(lpn, ("old", lpn))
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            ssd.write_atomic([(hot + 1, "n1"), (hot + 2, "n2")])
        ssd.power_cycle()
        assert ssd.read(hot + 1) == ("old", hot + 1)
        assert ssd.read(hot + 2) == ("old", hot + 2)
        ssd.ftl.check_invariants()

    def test_atomic_write_ioctl_through_file(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        f = fs.create("/f")
        f.fallocate(4)
        commands = atomic_write_ioctl(f, [(0, "a"), (2, "c")])
        assert commands == 1
        assert f.pread_block(0) == "a"
        assert f.pread_block(2) == "c"


class TestInnoDbAtomicWriteMode:
    def test_engine_runs_in_atomic_write_mode(self, clock):
        from repro.flash.geometry import FlashGeometry
        from repro.flash.timing import FAST_TIMING
        from repro.innodb.engine import InnoDBConfig, InnoDBEngine
        from repro.sim.clock import SimClock
        from repro.ssd.device import SsdConfig
        geo = FlashGeometry(page_size=4096, pages_per_block=64,
                            block_count=256, overprovision_ratio=0.1)
        data = Ssd(clock, SsdConfig(geometry=geo, timing=FAST_TIMING))
        log = Ssd(clock, SsdConfig(geometry=FlashGeometry.small(),
                                   timing=FAST_TIMING, share_enabled=False))
        engine = InnoDBEngine(FlushMode.ATOMIC_WRITE, data, log,
                              InnoDBConfig(buffer_pool_pages=32,
                                           flush_batch_pages=16))
        engine.create_table("t")
        for i in range(2000):
            with engine.transaction() as txn:
                txn.put("t", i % 500, ("row", i))
        # Single write per page, like SHARE; no share pairs, no torn window.
        assert data.stats.share_pairs == 0
        assert data.stats.extra.get("atomic_write_commands", 0) > 0
        engine.pool.drop_clean()
        with engine.transaction() as txn:
            assert txn.get("t", 3) is not None


class TestReflinkCopy:
    def test_copy_without_copying(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        src = fs.create("/src")
        for i in range(10):
            src.append_block(("data", i))
        writes_before = ssd.stats.host_write_pages
        fs.reflink_copy("/src", "/dst")
        data_writes = (ssd.stats.host_write_pages - writes_before
                       - fs.config.metadata_pages_per_commit)
        assert data_writes == 0, "reflink must copy no data pages"
        dst = fs.open("/dst")
        for i in range(10):
            assert dst.pread_block(i) == ("data", i)

    def test_copies_are_independent(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        src = fs.create("/src")
        src.append_block("original")
        fs.reflink_copy("/src", "/dst")
        src.pwrite_block(0, "modified")
        assert fs.open("/dst").pread_block(0) == "original"
        assert src.pread_block(0) == "modified"

    def test_copy_survives_source_unlink(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        src = fs.create("/src")
        src.append_block("keep")
        fs.reflink_copy("/src", "/dst")
        fs.unlink("/src")
        assert fs.open("/dst").pread_block(0) == "keep"
        ssd.ftl.check_invariants()

    def test_holes_stay_holes(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        src = fs.create("/src")
        src.fallocate(4)
        src.pwrite_block(1, "only-written-block")
        fs.reflink_copy("/src", "/dst")
        dst = fs.open("/dst")
        assert dst.pread_block(1) == "only-written-block"
        assert not ssd.ftl.is_mapped(dst.block_lpn(0))

    def test_empty_file_copy(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        fs.create("/src")
        assert fs.reflink_copy("/src", "/dst") == 0
        assert fs.open("/dst").block_count == 0
