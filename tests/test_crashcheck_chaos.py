"""Unit tests for the chaos (command-fault) explorer machinery.

The exhaustive sweeps run in CI via ``repro.tools.crashexplore
--chaos``; this file checks the mechanics — deterministic SHARE-command
counting, per-injection verdicts with guard-stats evidence, the
fallback-boundary power pairing, budget-capped sampling, and the CLI
entry point.
"""

import json

import pytest

from repro.crashcheck.chaosfaults import (
    ALL_CHAOS_MODES,
    MODE_CHAOS_POWER,
    MODE_SHARE_BUSY,
    MODE_SHARE_OUTAGE,
    MODE_SHARE_TIMEOUT,
    ChaosOccurrence,
    ChaosReport,
    ChaosResult,
    enumerate_chaos_occurrences,
    enumerate_share_commands,
    explore_chaos,
    explore_chaos_occurrence,
)
from repro.crashcheck.workloads import WORKLOADS
from repro.tools.crashexplore import main as crashexplore_main

FACTORY = WORKLOADS["sqlite-share"]

_CACHE = {}


def share_count():
    if "shares" not in _CACHE:
        _CACHE["shares"] = enumerate_share_commands(FACTORY)
    return _CACHE["shares"]


class ListSink:
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(dict(record))


def test_share_enumeration_is_deterministic_and_nonzero():
    count = share_count()
    assert count == enumerate_share_commands(FACTORY)
    assert count > 0


def test_occurrence_list_covers_every_share_command():
    count = share_count()
    occurrences = enumerate_chaos_occurrences(
        FACTORY, (MODE_SHARE_TIMEOUT, MODE_SHARE_BUSY, MODE_SHARE_OUTAGE),
        share_commands=count)
    per_mode = {}
    for occ in occurrences:
        per_mode.setdefault(occ.mode, []).append(occ)
    for mode in (MODE_SHARE_TIMEOUT, MODE_SHARE_BUSY, MODE_SHARE_OUTAGE):
        assert [o.nth for o in per_mode[mode]] == \
            list(range(1, count + 1))
    # Both timeout phases and both outage flavours are exercised.
    assert {o.flavor for o in per_mode[MODE_SHARE_TIMEOUT]} == \
        {"submit", "complete"}
    assert {o.flavor for o in per_mode[MODE_SHARE_OUTAGE]} == \
        {"unsupported", "timeout"}


def test_chaos_power_pairs_include_every_fallback_boundary():
    occurrences = enumerate_chaos_occurrences(
        FACTORY, (MODE_CHAOS_POWER,), share_commands=share_count())
    assert occurrences == enumerate_chaos_occurrences(
        FACTORY, (MODE_CHAOS_POWER,), share_commands=share_count())
    assert occurrences, "the degraded run must reach checkpoints"
    boundary = [occ for occ in occurrences
                if "fallback" in occ.power_point]
    assert boundary, ("a sticky outage must drive the workload through "
                      "fallback checkpoints")
    for occ in occurrences:
        assert occ.power_point is not None
        assert occ.power_nth >= 1


def test_timeout_injection_healed_by_retry():
    result = explore_chaos_occurrence(
        FACTORY, ChaosOccurrence(MODE_SHARE_TIMEOUT, 1, "submit"))
    assert isinstance(result, ChaosResult)
    assert result.fired
    assert not result.crashed
    assert result.aborted is None
    assert result.retries > 0
    assert result.ok, result.violations


def test_applied_but_lost_timeout_is_safe_to_retry():
    result = explore_chaos_occurrence(
        FACTORY, ChaosOccurrence(MODE_SHARE_TIMEOUT, 2, "complete"))
    assert result.fired
    assert result.retries > 0
    assert result.ok, result.violations


def test_busy_burst_healed_by_backoff():
    result = explore_chaos_occurrence(
        FACTORY, ChaosOccurrence(MODE_SHARE_BUSY, 1))
    assert result.fired
    assert result.retries > 0
    assert result.ok, result.violations


def test_outage_served_by_fallback():
    result = explore_chaos_occurrence(
        FACTORY, ChaosOccurrence(MODE_SHARE_OUTAGE, 1, "unsupported"))
    assert result.fired
    assert result.fallbacks > 0
    assert result.ok, result.violations


def test_chaos_power_at_fallback_boundary():
    occurrences = enumerate_chaos_occurrences(
        FACTORY, (MODE_CHAOS_POWER,), share_commands=share_count())
    boundary = next(occ for occ in occurrences
                    if "fallback" in occ.power_point)
    result = explore_chaos_occurrence(FACTORY, boundary)
    assert result.crashed
    assert result.ok, result.violations


def test_harness_without_guards_is_rejected():
    with pytest.raises(TypeError):
        explore_chaos_occurrence(
            WORKLOADS["ftl-basic"],
            ChaosOccurrence(MODE_SHARE_OUTAGE, 1, "unsupported"))


def test_explore_chaos_caps_by_even_sampling():
    sink = ListSink()
    report = explore_chaos(FACTORY, "sqlite-share",
                           modes=(MODE_SHARE_OUTAGE,),
                           max_points=4, sink=sink)
    assert isinstance(report, ChaosReport)
    assert len(report.results) == 4
    # The cap samples across the occurrence space, not just its head.
    assert max(res.nth for res in report.results) > 4 or share_count() <= 4
    assert report.ok
    site_records = [r for r in sink.records if r["type"] == "chaoscheck"]
    assert len(site_records) == 4
    for record in site_records:
        assert record["workload"] == "sqlite-share"
        assert record["mode"] == MODE_SHARE_OUTAGE
        assert record["ok"] is True
        json.dumps(record)   # must be serialisable as-is
    summaries = [r for r in sink.records
                 if r["type"] == "chaoscheck-summary"]
    assert len(summaries) == 1
    assert summaries[0]["explored"] == 4
    assert summaries[0]["fallbacks"] > 0
    assert summaries[0]["ok"] is True


def test_report_failures_and_summary_shape():
    good = ChaosResult(MODE_SHARE_TIMEOUT, 1, "submit", None, 0,
                       True, False, None, 1, 0, ())
    bad = ChaosResult(MODE_SHARE_OUTAGE, 2, "timeout", None, 0,
                      True, False, "OutOfSpaceError", 3, 0,
                      ("lost data",))
    report = ChaosReport("w", (MODE_SHARE_TIMEOUT, MODE_SHARE_OUTAGE), 2,
                         (), (good, bad))
    assert not report.ok
    assert report.failures == [bad]
    summary = report.summary()
    assert summary["violations"] == 1
    assert summary["aborted"] == 1
    assert summary["retries"] == 4
    assert summary["ok"] is False


def test_cli_chaos_smoke(tmp_path, capsys):
    out = tmp_path / "report.jsonl"
    code = crashexplore_main(
        ["--workload", "sqlite-share", "--chaos",
         "--chaos-modes", "share-outage",
         "--max-points", "3", "--out", str(out)])
    assert code == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert sum(1 for r in records if r["type"] == "chaoscheck") == 3
    assert records[-1]["type"] == "chaoscheck-summary"
    assert records[-1]["ok"] is True
    captured = capsys.readouterr()
    assert "chaos injections" in captured.out
    assert "all invariants held" in captured.out


def test_cli_rejects_unknown_chaos_mode(tmp_path):
    code = crashexplore_main(
        ["--workload", "sqlite-share", "--chaos",
         "--chaos-modes", "bogus", "--out", str(tmp_path / "r.jsonl")])
    assert code == 2


def test_cli_rejects_guardless_workload(tmp_path):
    code = crashexplore_main(
        ["--workload", "ftl-basic", "--chaos",
         "--out", str(tmp_path / "r.jsonl")])
    assert code == 2


def test_cli_rejects_combined_dimensions(tmp_path):
    code = crashexplore_main(
        ["--workload", "sqlite-share", "--chaos", "--media-faults",
         "--out", str(tmp_path / "r.jsonl")])
    assert code == 2


def test_all_chaos_modes_constant_is_closed():
    assert set(ALL_CHAOS_MODES) == {MODE_SHARE_TIMEOUT, MODE_SHARE_BUSY,
                                    MODE_SHARE_OUTAGE, MODE_CHAOS_POWER}
