"""Unit tests for counters, histograms, and the latency recorder."""

import pytest

from repro.sim.stats import Counter, Histogram, LatencyRecorder, percentile


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        values = sorted([3.2, 1.1, 9.9, 4.4, 2.2, 8.8, 0.5])
        for p in (10, 25, 50, 75, 90, 99):
            assert percentile(values, p) == pytest.approx(
                float(numpy.percentile(values, p)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCounter:
    def test_default_zero(self):
        assert Counter().get("x") == 0

    def test_add_and_get(self):
        counter = Counter()
        counter.add("writes")
        counter.add("writes", 4)
        assert counter["writes"] == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_reset(self):
        counter = Counter()
        counter.add("x", 3)
        counter.reset()
        assert counter.get("x") == 0

    def test_names_sorted(self):
        counter = Counter()
        counter.add("b")
        counter.add("a")
        assert counter.names() == ["a", "b"]


class TestHistogram:
    def test_mean_and_extremes(self):
        hist = Histogram()
        hist.extend([1.0, 2.0, 3.0])
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.count == 3

    def test_summary_shape(self):
        hist = Histogram()
        hist.extend(float(i) for i in range(1, 101))
        summary = hist.summary()
        assert set(summary) == {"mean", "p25", "p50", "p75", "p99", "max"}
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["max"] == 100.0

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            Histogram().mean

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            Histogram().record(-0.1)

    def test_pct_after_record_invalidates_cache(self):
        hist = Histogram()
        hist.record(1.0)
        assert hist.pct(50) == 1.0
        hist.record(100.0)
        assert hist.pct(100) == 100.0


class TestLatencyRecorder:
    def test_records_per_op(self):
        recorder = LatencyRecorder()
        recorder.record("Get_Node", 5.0)
        recorder.record("Get_Node", 7.0)
        recorder.record("Add_Link", 50.0)
        table = recorder.table()
        assert table["Get_Node"]["mean"] == pytest.approx(6.0)
        assert table["Add_Link"]["max"] == 50.0

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            LatencyRecorder().histogram("nope")

    def test_merged(self):
        recorder = LatencyRecorder()
        recorder.record("a", 1.0)
        recorder.record("b", 3.0)
        assert recorder.merged().mean == pytest.approx(2.0)

    def test_op_names(self):
        recorder = LatencyRecorder()
        recorder.record("b", 1.0)
        recorder.record("a", 1.0)
        assert recorder.op_names() == ["a", "b"]


class TestDistributionSummary:
    """The shared quantile helper both summary paths route through."""

    def test_default_percentile_keys(self):
        from repro.sim.stats import distribution_summary
        summary = distribution_summary(sorted([5.0, 1.0, 3.0, 2.0, 4.0]))
        assert set(summary) == {"p25", "p50", "p75", "p99"}
        assert summary["p50"] == 3.0

    def test_custom_percentiles(self):
        from repro.sim.stats import distribution_summary
        summary = distribution_summary([1.0, 2.0], percentiles=(50, 90))
        assert set(summary) == {"p50", "p90"}

    def test_matches_percentile_function(self):
        from repro.sim.stats import distribution_summary
        values = sorted(float((i * 37) % 101) for i in range(60))
        summary = distribution_summary(values)
        for p in (25, 50, 75, 99):
            assert summary[f"p{p}"] == percentile(values, p)

    def test_histogram_summary_routes_through_it(self):
        hist = Histogram()
        for v in (4.0, 8.0, 15.0, 16.0, 23.0, 42.0):
            hist.record(v)
        summary = hist.summary()
        assert summary["p50"] == percentile(sorted([4.0, 8.0, 15.0, 16.0,
                                                    23.0, 42.0]), 50)

    def test_bounded_histogram_agrees_below_reservoir_cap(self):
        """repro.obs's reservoir histogram and the exact histogram must
        produce identical quantiles while no samples have been evicted —
        both now delegate to the same helper."""
        from repro.obs.registry import BoundedHistogram
        exact = Histogram()
        bounded = BoundedHistogram("x")
        values = [float((i * 17) % 97) for i in range(200)]
        for v in values:
            exact.record(v)
            bounded.record(v)
        exact_summary = exact.summary()
        bounded_summary = bounded.summary()
        for key in ("p25", "p50", "p75", "p99", "max", "mean"):
            assert bounded_summary[key] == exact_summary[key]
        assert bounded_summary["count"] == len(exact) == 200
