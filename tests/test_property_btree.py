"""Property-based tests: both B+trees must behave exactly like a sorted
dict under arbitrary operation sequences."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.couchstore.tree import AppendTree
from repro.host.filesystem import FsConfig, HostFs
from repro.innodb.btree import BTree
from repro.innodb.page import Page
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config

KEYS = st.integers(0, 150)
VALUES = st.integers(0, 10_000)

op_strategy = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES),
    st.tuples(st.just("delete"), KEYS, st.just(0)),
)


class _MemPages:
    def __init__(self):
        self.pages = {}
        self.next_id = 0
        self.lsn = 0

    def fetch(self, page_id):
        return self.pages[page_id]

    def write(self, page):
        self.pages[page.page_id] = page

    def allocate(self):
        self.next_id += 1
        return self.next_id - 1

    def next_lsn(self):
        self.lsn += 1
        return self.lsn


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, max_size=200),
       st.integers(2, 6), st.integers(3, 6))
def test_innodb_btree_matches_dict(ops, leaf_capacity, fanout):
    store = _MemPages()
    tree = BTree("t", store.fetch, store.write, store.allocate,
                 store.next_lsn, leaf_capacity=leaf_capacity,
                 internal_fanout=fanout)
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            tree.put(key, value)
            model[key] = value
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert sorted(model.items()) == list(tree.items())
    assert tree.entry_count == len(model)
    for key in range(151):
        assert tree.get(key) == model.get(key)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(op_strategy, min_size=1, max_size=12),
                max_size=25),
       st.integers(2, 5), st.integers(3, 6))
def test_append_tree_matches_dict_across_batches(batches, leaf_capacity,
                                                 fanout):
    clock = SimClock()
    ssd = Ssd(clock, small_ssd_config())
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    tree = AppendTree(fs.create("/t"), leaf_capacity=leaf_capacity,
                      internal_fanout=fanout)
    model = {}
    for batch_ops in batches:
        changes = {}
        for kind, key, value in batch_ops:
            changes[key] = value if kind == "put" else None
        tree.apply_batch(changes)
        for key, value in changes.items():
            if value is None:
                model.pop(key, None)
            else:
                model[key] = value
        assert sorted(model.items()) == list(tree.items())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(KEYS, VALUES), min_size=1, max_size=120))
def test_append_tree_bulk_load_equals_incremental(pairs):
    clock = SimClock()
    ssd = Ssd(clock, small_ssd_config())
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    model = {}
    for key, value in pairs:
        model[key] = value
    bulk = AppendTree(fs.create("/bulk"), leaf_capacity=4, internal_fanout=5)
    bulk.bulk_load(sorted(model.items()))
    incremental = AppendTree(fs.create("/inc"), leaf_capacity=4,
                             internal_fanout=5)
    for key, value in pairs:
        incremental.apply_batch({key: value})
    assert list(bulk.items()) == list(incremental.items())
