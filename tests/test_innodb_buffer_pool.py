"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import EngineError
from repro.innodb.buffer_pool import BufferPool
from repro.innodb.page import Page


class PoolHarness:
    """A fake backing store recording flushes."""

    def __init__(self, capacity=8, batch=4):
        self.disk = {}
        self.flushed_batches = []
        self.pool = BufferPool(capacity_pages=capacity,
                               read_page=self.read,
                               flush_callback=self.flush,
                               flush_batch_pages=batch)

    def read(self, page_id):
        return self.disk[page_id]

    def flush(self, pages):
        self.flushed_batches.append([p.page_id for p in pages])
        for page in pages:
            self.disk[page.page_id] = page

    def seed(self, count):
        for page_id in range(count):
            self.disk[page_id] = Page(page_id, 0, ("seed", page_id))


@pytest.fixture
def harness():
    h = PoolHarness()
    h.seed(32)
    return h


def test_fetch_miss_then_hit(harness):
    pool = harness.pool
    page = pool.fetch(3)
    assert page.payload == ("seed", 3)
    assert pool.misses == 1
    pool.fetch(3)
    assert pool.hits == 1


def test_put_marks_dirty(harness):
    pool = harness.pool
    pool.put(Page(3, 1, "dirty"))
    assert pool.dirty_count == 1
    assert pool.fetch(3).payload == "dirty"


def test_eviction_of_clean_pages_is_silent(harness):
    pool = harness.pool
    for page_id in range(10):
        pool.fetch(page_id)
    assert len(pool) <= pool.capacity_pages
    assert harness.flushed_batches == []
    assert pool.evictions > 0


def test_dirty_eviction_flushes_batch(harness):
    pool = harness.pool
    for page_id in range(8):
        pool.put(Page(page_id, 1, ("d", page_id)))
    pool.fetch(20)  # forces eviction of a dirty victim
    assert harness.flushed_batches
    assert len(harness.flushed_batches[0]) <= pool.flush_batch_pages


def test_flushed_pages_become_clean(harness):
    pool = harness.pool
    pool.put(Page(1, 1, "a"))
    pool.flush_some()
    assert pool.dirty_count == 0
    # Still resident and correct.
    assert pool.fetch(1).payload == "a"


def test_flush_all_in_batches(harness):
    pool = harness.pool
    for page_id in range(7):
        pool.put(Page(page_id, 1, ("d", page_id)))
    flushed = pool.flush_all()
    assert flushed == 7
    assert pool.dirty_count == 0
    assert len(harness.flushed_batches) == 2  # 4 + 3


def test_lru_order(harness):
    pool = harness.pool
    for page_id in range(8):
        pool.fetch(page_id)
    pool.fetch(0)  # refresh page 0
    pool.fetch(20)  # evicts page 1, not 0
    assert pool.contains(0)
    assert not pool.contains(1)


def test_wrong_page_id_from_storage_rejected():
    pool = BufferPool(capacity_pages=8,
                      read_page=lambda pid: Page(pid + 1, 0, "bad"),
                      flush_callback=lambda pages: None)
    with pytest.raises(EngineError):
        pool.fetch(3)


def test_capacity_validation():
    with pytest.raises(ValueError):
        BufferPool(capacity_pages=4, read_page=lambda p: None,
                   flush_callback=lambda p: None)
    with pytest.raises(ValueError):
        BufferPool(capacity_pages=8, read_page=lambda p: None,
                   flush_callback=lambda p: None, flush_batch_pages=0)


def test_drop_clean(harness):
    pool = harness.pool
    pool.fetch(1)
    pool.put(Page(2, 1, "dirty"))
    pool.drop_clean()
    assert not pool.contains(1)
    assert pool.contains(2)
