"""Unit tests for the mapping delta log."""

import pytest

from repro.errors import FtlError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.deltalog import (
    KIND_SHARE,
    KIND_SNAP,
    KIND_TRIM,
    DeltaRecord,
    MapLog,
)


@pytest.fixture
def env():
    geo = FlashGeometry.small()
    nand = NandArray(geo)
    blocks = [geo.block_count - 2, geo.block_count - 1]
    log = MapLog(nand, geo, blocks, records_per_page=4)
    return nand, geo, blocks, log


def record(lpn, seq, kind=KIND_SHARE, new_ppn=0):
    return DeltaRecord(kind, lpn, None, new_ppn, seq)


class TestDeltaRecord:
    def test_valid(self):
        rec = DeltaRecord(KIND_SHARE, 1, 2, 3, 4)
        assert rec.new_ppn == 3

    def test_trim_must_have_no_new_ppn(self):
        with pytest.raises(ValueError):
            DeltaRecord(KIND_TRIM, 1, 2, 3, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DeltaRecord("bogus", 1, None, None, 1)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            DeltaRecord(KIND_SHARE, -1, None, 0, 1)
        with pytest.raises(ValueError):
            DeltaRecord(KIND_SHARE, 1, None, 0, -1)


class TestMapLog:
    def test_append_and_scan(self, env):
        nand, geo, blocks, log = env
        log.append_atomic([record(1, 1), record(2, 2)])
        records, bad_pages = MapLog.scan(nand, geo, blocks)
        assert [r.lpn for r in records] == [1, 2]
        assert bad_pages == 0
        assert log.page_writes == 1

    def test_empty_batch_rejected(self, env):
        __, __, __, log = env
        with pytest.raises(ValueError):
            log.append_atomic([])

    def test_oversized_batch_rejected(self, env):
        __, __, __, log = env
        with pytest.raises(FtlError):
            log.append_atomic([record(i, i + 1) for i in range(5)])

    def test_append_splits_large_batches(self, env):
        nand, geo, blocks, log = env
        log.append([record(i, i + 1) for i in range(10)])
        assert log.page_writes == 3  # 4 + 4 + 2
        assert len(MapLog.scan(nand, geo, blocks)[0]) == 10

    def test_checkpoint_triggers_when_full(self, env):
        nand, geo, blocks, log = env
        live = [record(99, 10_000, KIND_SNAP)]
        log.set_snapshot_provider(lambda: list(live))
        total_pages = len(blocks) * geo.pages_per_block
        for i in range(total_pages + 3):
            log.append_atomic([record(i, i + 1)])
        assert log.checkpoints >= 1
        scanned, __ = MapLog.scan(nand, geo, blocks)
        # The snapshot record must be present after compaction.
        assert any(r.lpn == 99 and r.kind == KIND_SNAP for r in scanned)

    def test_checkpoint_without_provider_fails(self, env):
        nand, geo, blocks, log = env
        total_pages = len(blocks) * geo.pages_per_block
        with pytest.raises(FtlError):
            for i in range(total_pages + 1):
                log.append_atomic([record(i, i + 1)])

    def test_bind_to_end_of_log_appends_after_existing(self, env):
        nand, geo, blocks, log = env
        log.append_atomic([record(1, 1)])
        other = MapLog(nand, geo, blocks, records_per_page=4)
        other.bind_to_end_of_log()
        other.append_atomic([record(2, 2)])
        assert len(MapLog.scan(nand, geo, blocks)[0]) == 2

    def test_scan_rejects_foreign_pages(self, env):
        nand, geo, blocks, __ = env
        nand.program(geo.first_ppn(blocks[0]), "data", spare=((1, 1),))
        with pytest.raises(FtlError):
            MapLog.scan(nand, geo, blocks)

    def test_needs_a_block(self):
        geo = FlashGeometry.small()
        nand = NandArray(geo)
        with pytest.raises(ValueError):
            MapLog(nand, geo, [], records_per_page=4)
