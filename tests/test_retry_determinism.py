"""Satellite: a guard's retry schedule — jittered backoffs, the virtual
timeline they produce, and where the deadline cuts the attempt chain —
is exactly reproducible for a fixed policy seed.  Two identical runs
must agree microsecond-for-microsecond; the crashcheck sweeps and the
failover benchmark depend on this to be re-runnable."""

from repro.errors import DeviceBusyError, RetriesExhaustedError
from repro.host.resilience import CircuitBreaker, RetryPolicy, ShareGuard
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


class Flaky:
    """Fails the first ``failures`` calls with a retryable busy error."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise DeviceBusyError("transient busy")
        return "ok"


def run_schedule(seed, failures=2, calls=6, deadline_us=2_000_000,
                 max_attempts=5):
    """One guarded run; returns everything an identical re-run must
    reproduce: the stats counters, the virtual timeline after each call,
    and each call's outcome."""
    clock = SimClock()
    ssd = Ssd(clock, small_ssd_config())
    policy = RetryPolicy(seed=seed, deadline_us=deadline_us,
                         max_attempts=max_attempts)
    guard = ShareGuard(ssd, engine="det", policy=policy,
                       breaker=CircuitBreaker(clock, failure_threshold=100))
    timeline = []
    outcomes = []
    for __ in range(calls):
        flaky = Flaky(failures)
        try:
            outcomes.append(guard.call("op", flaky))
        except RetriesExhaustedError as exc:
            outcomes.append(("exhausted", exc.attempts))
        timeline.append(clock.now_us)
    return guard.stats, timeline, outcomes


def test_identical_runs_produce_identical_schedules():
    stats_a, timeline_a, outcomes_a = run_schedule(seed=0x51C)
    stats_b, timeline_b, outcomes_b = run_schedule(seed=0x51C)
    assert timeline_a == timeline_b
    assert outcomes_a == outcomes_b
    assert stats_a.backoff_us == stats_b.backoff_us
    assert stats_a.retries == stats_b.retries == 12    # 2 per call
    assert stats_a.attempts == stats_b.attempts
    # Jitter actually ran: the timeline is not the jitter-free one.
    assert stats_a.backoff_us > 12 * 200


def test_different_seeds_diverge():
    __, timeline_a, ___ = run_schedule(seed=1)
    __, timeline_b, ___ = run_schedule(seed=2)
    assert timeline_a != timeline_b


def test_deadline_cut_is_deterministic():
    """With backoffs 200/400/800 (+jitter) a 1000us deadline must fire
    by the third retry — at exactly the same attempt both runs."""
    results = [run_schedule(seed=7, failures=10, calls=4,
                            deadline_us=1_000, max_attempts=10)
               for __ in range(2)]
    (stats_a, timeline_a, outcomes_a), (stats_b, timeline_b,
                                        outcomes_b) = results
    assert stats_a.deadline_exceeded == stats_b.deadline_exceeded == 4
    assert timeline_a == timeline_b
    assert outcomes_a == outcomes_b
    for outcome in outcomes_a:
        assert outcome[0] == "exhausted"
        assert outcome[1] <= 3    # the deadline cut before the budget
