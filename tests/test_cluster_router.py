"""Tests for the consistent-hash ring and the shard router's client
API: deterministic placement, the ack contract, same-shard SHARE vs
cross-shard copy degradation, deletes, and replication pumping."""

import pytest

from repro.cluster import HashRing, ShardPair, ShardRouter, fnv1a64
from repro.errors import ClusterError
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.ssd.device import Ssd

from conftest import small_ssd_config


def make_cluster(clock, shards=3, **pair_kwargs):
    events = EventScheduler(clock)
    pairs = []
    for index in range(shards):
        primary = Ssd(clock, small_ssd_config(), name=f"s{index}p",
                      events=events)
        replica = Ssd(clock, small_ssd_config(), name=f"s{index}r",
                      events=events)
        pairs.append(ShardPair(f"shard{index}", primary, replica,
                               **pair_kwargs))
    return ShardRouter(pairs, clock), pairs


# --------------------------------------------------------------- HashRing


class TestHashRing:
    def test_fnv1a64_is_stable(self):
        # Known-answer: the empty string hashes to the FNV offset basis.
        assert fnv1a64(b"") == 0xCBF29CE484222325
        assert fnv1a64(b"a") == fnv1a64(b"a")
        assert fnv1a64(b"a") != fnv1a64(b"b")

    def test_lookup_is_deterministic_across_rings(self):
        nodes = ["shard0", "shard1", "shard2"]
        ring_a = HashRing(nodes)
        ring_b = HashRing(nodes)
        keys = [("node", n) for n in range(200)]
        assert [ring_a.lookup(k) for k in keys] \
            == [ring_b.lookup(k) for k in keys]

    def test_every_node_gets_load(self):
        ring = HashRing(["shard0", "shard1", "shard2"])
        spread = ring.spread([("node", n) for n in range(600)])
        assert sum(spread.values()) == 600
        assert all(count > 0 for count in spread.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_len(self):
        assert len(HashRing(["a", "b"])) == 2


# ------------------------------------------------------------ ShardRouter


class TestShardRouter:
    def test_put_get_roundtrip(self, clock):
        router, __ = make_cluster(clock)
        for n in range(40):
            router.put(("node", n), ("v", n))
        for n in range(40):
            assert router.get(("node", n)) == ("v", n)
        assert router.get(("node", 999)) is None
        assert router.stats.acked_writes == 40
        assert router.stats.reads == 41

    def test_put_returns_the_ack_record(self, clock):
        router, __ = make_cluster(clock)
        record = router.put("k", "v")
        pair = router.pair_for("k")
        assert record.kind == "write"
        assert record.seq == pair.log.tip
        assert pair.directory["k"] == record.lpn

    def test_routing_is_sticky(self, clock):
        router, __ = make_cluster(clock)
        owner = router.pair_for(("node", 7))
        router.put(("node", 7), "v")
        assert router.pair_for(("node", 7)) is owner
        assert ("node", 7) in owner.directory

    def test_same_shard_share_is_a_remap(self, clock):
        router, __ = make_cluster(clock)
        # Find a destination key on the same shard as the source.
        src = ("node", 0)
        src_pair = router.pair_for(src)
        dst = next(("snap", n) for n in range(1000)
                   if router.pair_for(("snap", n)) is src_pair)
        router.put(src, "payload")
        before = src_pair.shares
        record = router.share(dst, src)
        assert src_pair.shares == before + 1
        assert record.kind == "share"
        assert router.stats.cross_shard_copies == 0
        assert router.get(dst) == "payload"

    def test_cross_shard_share_degrades_to_copy(self, clock):
        router, __ = make_cluster(clock)
        src = ("node", 0)
        src_pair = router.pair_for(src)
        dst = next(("snap", n) for n in range(1000)
                   if router.pair_for(("snap", n)) is not src_pair)
        router.put(src, "payload")
        record = router.share(dst, src)
        assert record.kind == "write"    # a put on the destination shard
        assert router.stats.cross_shard_copies == 1
        assert router.get(dst) == "payload"

    def test_share_missing_source_raises(self, clock):
        router, __ = make_cluster(clock)
        src = ("node", 0)
        dst = next(("snap", n) for n in range(1000)
                   if router.pair_for(("snap", n))
                   is router.pair_for(src))
        with pytest.raises(ClusterError):
            router.share(dst, src)

    def test_delete_then_get_none(self, clock):
        router, __ = make_cluster(clock)
        router.put("k", "v")
        acked_before = router.stats.acked_writes
        assert router.delete("k") is not None
        assert router.delete("k") is None    # absent: no ack, no record
        assert router.get("k") is None
        assert router.stats.acked_writes == acked_before + 1

    def test_deleted_lpn_is_reused(self, clock):
        router, __ = make_cluster(clock)
        record = router.put("k", "v")
        pair = router.pair_for("k")
        router.delete("k")
        assert record.lpn in pair._free_lpns
        router.put("k", "v2")
        assert pair.directory["k"] == record.lpn
        assert not pair._free_lpns

    def test_pump_replication_catches_replicas_up(self, clock):
        router, pairs = make_cluster(clock)
        for n in range(30):
            router.put(("node", n), ("v", n))
        assert any(pair.repl_lag > 0 for pair in pairs)
        applied = router.pump_replication()
        assert applied == 30
        assert all(pair.repl_lag == 0 for pair in pairs)
        assert router.stats.repl_applied == 30
        # Replicas now hold every payload at the primary's LPNs.
        for pair in pairs:
            for key, lpn in pair.directory.items():
                assert pair.replica.read(lpn) == pair.primary.read(lpn)

    def test_pump_limit_bounds_the_batch(self, clock):
        router, __ = make_cluster(clock, shards=1)
        for n in range(10):
            router.put(n, n)
        assert router.pump_replication(limit=4) == 4
        assert router.pump_replication() == 6

    def test_shard_full_raises(self, clock):
        router, pairs = make_cluster(clock, shards=1)
        pairs[0].capacity = 3
        for n in range(3):
            router.put(n, n)
        with pytest.raises(ClusterError):
            router.put("overflow", "v")

    def test_constructor_validation(self, clock):
        with pytest.raises(ValueError):
            ShardRouter([], clock)
        __, pairs = make_cluster(clock, shards=2)
        pairs[1].name = pairs[0].name
        with pytest.raises(ValueError):
            ShardRouter(pairs, clock)
