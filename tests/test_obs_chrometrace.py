"""Chrome-trace exporter: span lanes, device command/channel lanes,
the schema validator, and file export round-trips."""

import json

import pytest

from repro.obs import MemorySink, Telemetry, chrome_trace, \
    export_chrome_trace, validate_chrome_trace
from repro.sim.clock import SimClock
from repro.ssd.trace import IntervalTrace, IoTrace


def traced_spans():
    """A small nested span tree captured through the real tracer."""
    sink = MemorySink()
    telemetry = Telemetry(sink=sink, mode="full")
    clock = SimClock()
    telemetry.bind_clock(clock)
    tracer = telemetry.tracer
    with tracer.span("txn", kind="write"):
        clock.advance(10)
        with tracer.span("device.write"):
            clock.advance(50)
        clock.advance(5)
    with tracer.span("txn2"):
        clock.advance(20)
    return sink.records


class TestSpanLanes:
    def test_spans_become_complete_events(self):
        trace = chrome_trace(span_records=traced_spans())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"txn", "device.write", "txn2"}
        by_name = {e["name"]: e for e in xs}
        assert by_name["txn"]["ts"] == 0
        assert by_name["txn"]["dur"] == 65
        assert by_name["device.write"]["ts"] == 10
        assert by_name["device.write"]["dur"] == 50
        assert by_name["txn"]["args"] == {"kind": "write"}

    def test_depth_becomes_thread_lane(self):
        trace = chrome_trace(span_records=traced_spans())
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["txn"]["tid"] == 0
        assert by_name["txn2"]["tid"] == 0
        assert by_name["device.write"]["tid"] == 1

    def test_children_emitted_before_parents_get_right_depth(self):
        # Hand-built records in sink order (children close first).
        records = [
            {"type": "span", "name": "leaf", "span_id": 3, "parent_id": 2,
             "start_us": 2, "end_us": 3, "attrs": {}},
            {"type": "span", "name": "mid", "span_id": 2, "parent_id": 1,
             "start_us": 1, "end_us": 4, "attrs": {}},
            {"type": "span", "name": "root", "span_id": 1, "parent_id": None,
             "start_us": 0, "end_us": 5, "attrs": {}},
        ]
        by_name = {e["name"]: e for e in
                   chrome_trace(span_records=records)["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["root"]["tid"] == 0
        assert by_name["mid"]["tid"] == 1
        assert by_name["leaf"]["tid"] == 2

    def test_non_span_records_ignored(self):
        records = [{"type": "metrics", "t_us": 0, "metrics": {}}]
        assert chrome_trace(span_records=records)["traceEvents"] == []


class TestDeviceLanes:
    def device_traces(self):
        io = IoTrace(16)
        io.record_fields(100, "write", lpn=5, count=1, latency_us=40,
                         arrival_us=50, wait_us=10.0)
        intervals = IntervalTrace(16)
        intervals.record(0, 60, 100)
        intervals.record(1, 70, 90)
        return io, intervals

    def test_command_lane_spans_arrival_to_completion(self):
        io, intervals = self.device_traces()
        trace = chrome_trace(devices=[("data", io, intervals)])
        commands = [e for e in trace["traceEvents"]
                    if e["ph"] == "X" and e.get("cat") == "command"]
        assert len(commands) == 1
        cmd = commands[0]
        assert cmd["ts"] == 50 and cmd["dur"] == 50
        assert cmd["args"]["lpn"] == 5
        assert cmd["args"]["wait_us"] == 10.0
        assert cmd["pid"] == 2 and cmd["tid"] == 0

    def test_legacy_event_without_arrival_uses_service_time(self):
        io = IoTrace(4)
        io.record_fields(100, "read", lpn=1, count=1, latency_us=30)
        trace = chrome_trace(devices=[("d", io, None)])
        cmd = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert cmd["ts"] == 70 and cmd["dur"] == 30

    def test_channel_lanes(self):
        io, intervals = self.device_traces()
        trace = chrome_trace(devices=[("data", io, intervals)])
        busy = [e for e in trace["traceEvents"]
                if e["ph"] == "X" and e.get("cat") == "channel"]
        assert {(e["tid"], e["ts"], e["dur"]) for e in busy} \
            == {(1, 60, 40), (2, 70, 20)}

    def test_empty_traces_emit_no_lanes(self):
        trace = chrome_trace(devices=[("d", IoTrace(4), IntervalTrace(4)),
                                      ("e", None, None)])
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []


class TestValidation:
    def test_valid_trace_passes_and_chains(self):
        trace = chrome_trace(span_records=traced_spans())
        assert validate_chrome_trace(trace) is trace

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_chrome_trace([])

    def test_rejects_missing_event_list(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "B", "name": "x"}]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="'dur'"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "ts": 0, "dur": -1,
                 "pid": 1, "tid": 0}]})

    def test_rejects_unnamed_complete_event(self):
        with pytest.raises(ValueError, match="need a name"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "", "ts": 0, "dur": 1,
                 "pid": 1, "tid": 0}]})

    def test_rejects_unserialisable_args(self):
        with pytest.raises(ValueError, match="serialisable"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "ts": 0, "dur": 1, "pid": 1,
                 "tid": 0, "args": {"bad": object()}}]})


class TestExport:
    def test_export_writes_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        trace = chrome_trace(span_records=traced_spans())
        assert export_chrome_trace(path, trace) == path
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(loaded)
        assert len(loaded["traceEvents"]) == len(trace["traceEvents"])

    def test_export_refuses_invalid_trace(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with pytest.raises(ValueError):
            export_chrome_trace(path, {"traceEvents": [{"ph": "Q"}]})
