"""Tests for the LSM store: SSTables, merge compaction (copy and SHARE),
WAL recovery, and model equivalence."""

import random

import pytest

from repro.errors import EngineError
from repro.host.filesystem import FsConfig, HostFs
from repro.lsm import (
    TOMBSTONE,
    CompactionMode,
    LsmConfig,
    LsmStore,
    Memtable,
    SSTable,
)
from repro.lsm.compaction import merge_compact
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def fs(clock):
    return HostFs(Ssd(clock, small_ssd_config()), FsConfig(journal_blocks=8))


def make_store(fs, clock, mode=CompactionMode.SHARE, memtable_limit=64,
               l0_limit=3, block_capacity=4):
    return LsmStore(fs, "db", mode, clock,
                    LsmConfig(memtable_limit=memtable_limit,
                              l0_limit=l0_limit,
                              block_capacity=block_capacity))


class TestMemtable:
    def test_put_get_delete(self):
        table = Memtable()
        table.put(1, "a")
        assert table.get(1) == "a"
        table.delete(1)
        assert table.get(1) is TOMBSTONE
        assert table.get(2) is None

    def test_sorted_items(self):
        table = Memtable()
        for key in (3, 1, 2):
            table.put(key, key)
        assert [k for k, __ in table.sorted_items()] == [1, 2, 3]

    def test_len_and_clear(self):
        table = Memtable()
        table.put(1, "a")
        table.delete(2)
        assert len(table) == 2
        table.clear()
        assert len(table) == 0


class TestSSTable:
    def test_build_and_get(self, fs):
        entries = [(k, ("v", k)) for k in range(0, 40, 2)]
        table = SSTable.build(fs, "/run", entries, block_capacity=4)
        assert table.entry_count == 20
        assert table.get(10) == ("v", 10)
        assert table.get(11) is None
        assert table.get(-5) is None
        assert table.get(100) is None

    def test_key_range_and_meta(self, fs):
        entries = [(k, k) for k in range(10)]
        table = SSTable.build(fs, "/run", entries, block_capacity=4)
        assert table.key_range() == (0, 9)
        assert table.data_block_count == 3
        assert table.block_meta(0).first_key == 0
        assert table.block_meta(0).last_key == 3
        assert table.block_entry_count(2) == 2

    def test_tombstone_flag_in_meta(self, fs):
        entries = [(1, "a"), (2, TOMBSTONE), (3, "c")]
        table = SSTable.build(fs, "/run", entries, block_capacity=4)
        assert table.block_meta(0).has_tombstone
        assert table.get(2) is TOMBSTONE

    def test_items_in_order(self, fs):
        entries = [(k, k) for k in range(25)]
        table = SSTable.build(fs, "/run", entries, block_capacity=4)
        assert list(table.items()) == entries

    def test_reopen(self, fs):
        entries = [(k, ("v", k)) for k in range(12)]
        SSTable.build(fs, "/run", entries, block_capacity=4)
        reopened = SSTable.open(fs, "/run")
        assert reopened.entry_count == 12
        assert reopened.get(7) == ("v", 7)

    def test_fence_gap_skips_read(self, fs, clock):
        # A key between two blocks' fences must not read any block.
        entries = [(0, "a"), (1, "b"), (10, "c"), (11, "d")]
        table = SSTable.build(fs, "/run", entries, block_capacity=2)
        reads_before = fs.ssd.stats.host_read_pages
        assert table.get(5) is None
        assert fs.ssd.stats.host_read_pages == reads_before


class TestMergeCompaction:
    def build_runs(self, fs, newest, oldest):
        new_run = SSTable.build(fs, "/new", sorted(newest.items()),
                                block_capacity=4)
        old_run = SSTable.build(fs, "/old", sorted(oldest.items()),
                                block_capacity=4)
        return [new_run, old_run]

    @pytest.mark.parametrize("mode", list(CompactionMode))
    def test_newest_wins(self, fs, clock, mode):
        runs = self.build_runs(fs, {1: "new", 2: "only-new"},
                               {1: "old", 3: "only-old"})
        table, result = merge_compact(fs, runs, "/out", mode, clock)
        assert dict(table.items()) == {1: "new", 2: "only-new",
                                       3: "only-old"}

    @pytest.mark.parametrize("mode", list(CompactionMode))
    def test_tombstones_dropped(self, fs, clock, mode):
        runs = self.build_runs(fs, {1: TOMBSTONE, 2: "keep"},
                               {1: "dead", 3: "alive"})
        table, __ = merge_compact(fs, runs, "/out", mode, clock)
        assert dict(table.items()) == {2: "keep", 3: "alive"}

    def test_copy_mode_never_shares(self, fs, clock):
        runs = self.build_runs(fs, {k: "n" for k in range(0, 8)},
                               {k: "o" for k in range(100, 140)})
        __, result = merge_compact(fs, runs, "/out", CompactionMode.COPY,
                                   clock)
        assert result.blocks_shared == 0
        assert result.blocks_written > 0

    def test_share_mode_reuses_disjoint_blocks(self, fs, clock):
        # Cold range [100, 140) does not overlap the hot updates [0, 8).
        runs = self.build_runs(fs, {k: "n" for k in range(0, 8)},
                               {k: "o" for k in range(100, 140)})
        table, result = merge_compact(fs, runs, "/out",
                                      CompactionMode.SHARE, clock)
        assert result.blocks_shared >= 10  # all cold blocks reused
        assert dict(table.items()) == {**{k: "n" for k in range(8)},
                                       **{k: "o" for k in range(100, 140)}}

    def test_share_mode_skips_interleaved_blocks(self, fs, clock):
        # Every old block contains a superseded key: nothing reusable.
        newest = {k: "n" for k in range(0, 40, 4)}
        oldest = {k: "o" for k in range(40)}
        runs = self.build_runs(fs, newest, oldest)
        table, result = merge_compact(fs, runs, "/out",
                                      CompactionMode.SHARE, clock)
        assert result.blocks_shared == 0
        expected = dict(oldest)
        expected.update(newest)
        assert dict(table.items()) == expected

    def test_share_reuse_reads_nothing(self, fs, clock):
        cold = {k: ("cold", k) for k in range(100, 200)}
        runs = self.build_runs(fs, {0: "hot"}, cold)
        reads_before = fs.ssd.stats.host_read_pages
        __, result = merge_compact(fs, runs, "/out",
                                   CompactionMode.SHARE, clock)
        reads = fs.ssd.stats.host_read_pages - reads_before
        # Every block — the hot run's single block included — is disjoint
        # from the others, so all 26 move by fence metadata alone, with
        # zero data-block reads.
        assert result.blocks_shared == 26
        assert result.blocks_written == 0
        assert reads == 0

    @pytest.mark.parametrize("mode", list(CompactionMode))
    def test_modes_produce_identical_contents(self, fs, clock, mode):
        rng = random.Random(9)
        newest = {rng.randrange(300): ("n", i) for i in range(60)}
        middle = {rng.randrange(300): ("m", i) for i in range(80)}
        oldest = {k: ("o", k) for k in range(300)}
        runs = [SSTable.build(fs, f"/r{i}", sorted(d.items()),
                              block_capacity=4)
                for i, d in enumerate((newest, middle, oldest))]
        table, __ = merge_compact(fs, runs, "/out", mode, clock)
        expected = dict(oldest)
        expected.update(middle)
        expected.update(newest)
        assert dict(table.items()) == expected


class TestLsmStore:
    def test_put_get(self, fs, clock):
        store = make_store(fs, clock)
        store.put(1, "one")
        assert store.get(1) == "one"
        assert store.get(2) is None

    def test_delete_shadows_older_levels(self, fs, clock):
        store = make_store(fs, clock, memtable_limit=8)
        for key in range(8):
            store.put(key, ("v", key))  # triggers a flush to L0
        assert store.stats.flushes == 1
        store.delete(3)
        assert store.get(3) is None

    def test_none_value_rejected(self, fs, clock):
        store = make_store(fs, clock)
        with pytest.raises(EngineError):
            store.put(1, None)

    def test_flush_and_compaction_cascade(self, fs, clock):
        store = make_store(fs, clock, memtable_limit=16, l0_limit=2)
        for i in range(200):
            store.put(i % 50, ("v", i))
        assert store.stats.flushes > 0
        assert store.stats.compactions > 0
        assert store.l1 is not None

    def test_model_equivalence_random(self, fs, clock):
        store = make_store(fs, clock, memtable_limit=32, l0_limit=2)
        rng = random.Random(4)
        model = {}
        for i in range(1500):
            key = rng.randrange(200)
            if rng.random() < 0.15:
                store.delete(key)
                model.pop(key, None)
            else:
                store.put(key, ("v", i))
                model[key] = ("v", i)
            if i % 50 == 49:
                store.commit()
        assert store.items() == model
        for key in range(200):
            assert store.get(key) == model.get(key)

    @pytest.mark.parametrize("mode", list(CompactionMode))
    def test_reopen_recovers_committed_state(self, fs, clock, mode):
        store = make_store(fs, clock, mode=mode, memtable_limit=32)
        model = {}
        for i in range(300):
            store.put(i % 80, ("v", i))
            model[i % 80] = ("v", i)
            if i % 10 == 9:
                store.commit()
        store.commit()
        fs.ssd.power_cycle()
        reopened = LsmStore.reopen(fs, "db", mode, clock)
        for key, value in model.items():
            assert reopened.get(key) == value

    def test_uncommitted_tail_lost_on_crash(self, fs, clock):
        store = make_store(fs, clock, memtable_limit=1000)
        store.put(1, "committed")
        store.commit()
        store.put(2, "uncommitted")
        fs.ssd.power_cycle()
        reopened = LsmStore.reopen(fs, "db", CompactionMode.SHARE, clock)
        assert reopened.get(1) == "committed"
        assert reopened.get(2) is None

    def test_compaction_survives_crash_and_reopen(self, fs, clock):
        store = make_store(fs, clock, memtable_limit=32, l0_limit=2)
        for i in range(400):
            store.put(i % 100, ("v", i))
            if i % 20 == 19:
                store.commit()
        store.commit()
        store.flush_memtable()
        store.compact()
        expected = store.items()
        fs.ssd.power_cycle()
        reopened = LsmStore.reopen(fs, "db", CompactionMode.SHARE, clock)
        assert reopened.items() == expected
        fs.ssd.ftl.check_invariants()

    def test_share_compaction_writes_less_under_skew(self, fs, clock):
        from repro.sim.clock import SimClock
        totals = {}
        for mode in CompactionMode:
            local_clock = SimClock()
            local_fs = HostFs(Ssd(local_clock, small_ssd_config()),
                              FsConfig(journal_blocks=8))
            store = LsmStore(local_fs, "db", mode, local_clock,
                             LsmConfig(memtable_limit=128, l0_limit=8,
                                       block_capacity=4))
            for key in range(800):
                store.put(key, ("cold", key))
            store.flush_memtable()
            rng = random.Random(2)
            for i in range(256):
                store.put(rng.randrange(80), ("hot", i))
            store.flush_memtable()
            result = store.compact()
            totals[mode] = result
        share = totals[CompactionMode.SHARE]
        copy = totals[CompactionMode.COPY]
        assert share.blocks_shared > 0
        assert share.blocks_written < copy.blocks_written * 0.5
        assert share.elapsed_seconds < copy.elapsed_seconds
