"""Tests for the sweep CLI."""

import csv
import io

import pytest

from repro.bench.sweeps import (
    main,
    sweep_linkbench,
    sweep_microbench,
    sweep_ycsb,
    write_csv,
)
from repro.couchstore.engine import CommitMode
from repro.innodb.engine import FlushMode
from repro.workloads.ycsb import YcsbWorkload


def test_ycsb_sweep_rows():
    rows = sweep_ycsb(YcsbWorkload.F, [1, 8], records=400, operations=300,
                      modes=[CommitMode.ORIGINAL, CommitMode.SHARE])
    assert len(rows) == 4
    by_key = {(r["mode"], r["batch_size"]): r for r in rows}
    assert (by_key[("share", 1)]["throughput_ops"]
            > by_key[("original", 1)]["throughput_ops"])
    assert by_key[("share", 1)]["share_pairs"] > 0
    assert by_key[("original", 1)]["share_pairs"] == 0


def test_linkbench_sweep_rows():
    rows = sweep_linkbench([50], nodes=1200, transactions=800,
                           modes=[FlushMode.DWB_ON, FlushMode.SHARE])
    assert len(rows) == 2
    dwb, share = rows
    assert share["host_writes"] < dwb["host_writes"]
    assert share["throughput_tps"] > dwb["throughput_tps"]


def test_microbench_sweep_rows():
    rows = sweep_microbench(["randread"], ops=300, utilizations=[0.3, 0.6])
    assert len(rows) == 2
    assert all(r["iops"] > 0 for r in rows)


def test_write_csv_shape():
    rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
    buffer = io.StringIO()
    write_csv(rows, buffer)
    parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
    assert parsed == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]


def test_write_csv_empty_rejected():
    with pytest.raises(ValueError):
        write_csv([], io.StringIO())


def test_main_stdout(capsys):
    assert main(["microbench", "--patterns", "randread",
                 "--utilizations", "0.4", "--ops", "200"]) == 0
    out = capsys.readouterr().out
    assert "pattern" in out.splitlines()[0]
    assert "randread" in out


def test_main_csv_file(tmp_path, capsys):
    target = tmp_path / "rows.csv"
    assert main(["ycsb", "--workload", "F", "--batches", "4",
                 "--records", "300", "--ops", "200",
                 "--couch-modes", "share", "--csv", str(target)]) == 0
    parsed = list(csv.DictReader(target.open()))
    assert len(parsed) == 1
    assert parsed[0]["mode"] == "share"
