"""Unit tests for SHARE command validation (pairs, ranges, batches)."""

import pytest

from repro.errors import ShareError
from repro.ftl.share_ext import (
    MAX_BATCH_UNLIMITED,
    SharePair,
    expand_range,
    validate_batch,
)


class TestSharePair:
    def test_valid_pair(self):
        pair = SharePair(10, 20)
        assert pair.dst_lpn == 10
        assert pair.src_lpn == 20

    def test_identical_lpns_rejected(self):
        with pytest.raises(ShareError):
            SharePair(5, 5)

    def test_negative_rejected(self):
        with pytest.raises(ShareError):
            SharePair(-1, 5)
        with pytest.raises(ShareError):
            SharePair(5, -1)


class TestExpandRange:
    def test_single(self):
        assert expand_range(0, 10, 1) == [SharePair(0, 10)]

    def test_multi(self):
        pairs = expand_range(100, 200, 3)
        assert pairs == [SharePair(100, 200), SharePair(101, 201),
                         SharePair(102, 202)]

    def test_overlap_rejected(self):
        with pytest.raises(ShareError):
            expand_range(10, 12, 4)  # [10,14) overlaps [12,16)
        with pytest.raises(ShareError):
            expand_range(12, 10, 4)

    def test_adjacent_ranges_allowed(self):
        pairs = expand_range(10, 14, 4)  # [10,14) and [14,18) touch only
        assert len(pairs) == 4

    def test_zero_length_rejected(self):
        with pytest.raises(ShareError):
            expand_range(0, 10, 0)


class TestValidateBatch:
    def test_ok(self):
        validate_batch([SharePair(0, 10), SharePair(1, 11)], 100, 16)

    def test_empty_rejected(self):
        with pytest.raises(ShareError):
            validate_batch([], 100, 16)

    def test_too_large_rejected(self):
        pairs = [SharePair(i, 50 + i) for i in range(5)]
        with pytest.raises(ShareError):
            validate_batch(pairs, 100, 4)

    def test_unlimited_sentinel(self):
        pairs = [SharePair(i, 500 + i) for i in range(300)]
        validate_batch(pairs, 1000, MAX_BATCH_UNLIMITED)

    def test_out_of_space_rejected(self):
        with pytest.raises(ShareError):
            validate_batch([SharePair(99, 100)], 100, 16)

    def test_duplicate_destination_rejected(self):
        with pytest.raises(ShareError):
            validate_batch([SharePair(0, 10), SharePair(0, 11)], 100, 16)

    def test_chained_lpn_rejected(self):
        # 5 is a destination in one pair and a source in another.
        with pytest.raises(ShareError):
            validate_batch([SharePair(5, 10), SharePair(6, 5)], 100, 16)

    def test_shared_source_allowed(self):
        validate_batch([SharePair(0, 10), SharePair(1, 10)], 100, 16)
