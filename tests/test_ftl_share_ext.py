"""Unit tests for SHARE command validation (pairs, ranges, batches)."""

import pytest

from repro.errors import ShareError, UnmappedPageError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import STRATEGY_NAMES
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import (
    MAX_BATCH_UNLIMITED,
    SharePair,
    expand_range,
    validate_batch,
)


def _make_ftl(l2p_strategy: str = "flat") -> PageMappingFtl:
    """Small pages keep ``max_share_batch`` (one mapping page of deltas)
    tiny, so the atomic-limit boundary is cheap to cross."""
    geo = FlashGeometry(page_size=512, pages_per_block=16, block_count=40,
                        overprovision_ratio=0.2)
    return PageMappingFtl(NandArray(geo),
                          FtlConfig(map_block_count=4,
                                    share_table_entries=64,
                                    l2p_strategy=l2p_strategy,
                                    l2p_group_pages=8))


@pytest.fixture
def small_ftl():
    return _make_ftl()


@pytest.fixture(params=STRATEGY_NAMES)
def strategy_ftl(request):
    """The same small FTL on every L2P backing — the SHARE edge cases
    must hold regardless of how the forward map is laid out."""
    return _make_ftl(request.param)


class TestSharePair:
    def test_valid_pair(self):
        pair = SharePair(10, 20)
        assert pair.dst_lpn == 10
        assert pair.src_lpn == 20

    def test_identical_lpns_rejected(self):
        with pytest.raises(ShareError):
            SharePair(5, 5)

    def test_negative_rejected(self):
        with pytest.raises(ShareError):
            SharePair(-1, 5)
        with pytest.raises(ShareError):
            SharePair(5, -1)


class TestExpandRange:
    def test_single(self):
        assert expand_range(0, 10, 1) == [SharePair(0, 10)]

    def test_multi(self):
        pairs = expand_range(100, 200, 3)
        assert pairs == [SharePair(100, 200), SharePair(101, 201),
                         SharePair(102, 202)]

    def test_overlap_rejected(self):
        with pytest.raises(ShareError):
            expand_range(10, 12, 4)  # [10,14) overlaps [12,16)
        with pytest.raises(ShareError):
            expand_range(12, 10, 4)

    def test_adjacent_ranges_allowed(self):
        pairs = expand_range(10, 14, 4)  # [10,14) and [14,18) touch only
        assert len(pairs) == 4

    def test_zero_length_rejected(self):
        with pytest.raises(ShareError):
            expand_range(0, 10, 0)


class TestValidateBatch:
    def test_ok(self):
        validate_batch([SharePair(0, 10), SharePair(1, 11)], 100, 16)

    def test_empty_rejected(self):
        with pytest.raises(ShareError):
            validate_batch([], 100, 16)

    def test_too_large_rejected(self):
        pairs = [SharePair(i, 50 + i) for i in range(5)]
        with pytest.raises(ShareError):
            validate_batch(pairs, 100, 4)

    def test_unlimited_sentinel(self):
        pairs = [SharePair(i, 500 + i) for i in range(300)]
        validate_batch(pairs, 1000, MAX_BATCH_UNLIMITED)

    def test_out_of_space_rejected(self):
        with pytest.raises(ShareError):
            validate_batch([SharePair(99, 100)], 100, 16)

    def test_duplicate_destination_rejected(self):
        with pytest.raises(ShareError):
            validate_batch([SharePair(0, 10), SharePair(0, 11)], 100, 16)

    def test_chained_lpn_rejected(self):
        # 5 is a destination in one pair and a source in another.
        with pytest.raises(ShareError):
            validate_batch([SharePair(5, 10), SharePair(6, 5)], 100, 16)

    def test_shared_source_allowed(self):
        validate_batch([SharePair(0, 10), SharePair(1, 10)], 100, 16)


class TestBatchBoundaryRegressions:
    """Off-by-one and cross-pair-overlap regressions at the atomic batch
    limit (audited: ``len(pairs) > max_batch`` is the correct strict
    inequality — exactly ``max_batch`` deltas still fit one mapping
    page).  These tests pin that behaviour."""

    def test_exactly_max_batch_allowed(self):
        pairs = [SharePair(i, 100 + i) for i in range(16)]
        validate_batch(pairs, 1000, 16)

    def test_one_past_max_batch_rejected(self):
        pairs = [SharePair(i, 100 + i) for i in range(17)]
        with pytest.raises(ShareError, match="exceeds the atomic limit"):
            validate_batch(pairs, 1000, 16)

    def test_max_batch_of_one(self):
        validate_batch([SharePair(0, 10)], 100, 1)
        with pytest.raises(ShareError):
            validate_batch([SharePair(0, 10), SharePair(1, 11)], 100, 1)

    def test_last_valid_lpn_allowed(self):
        # logical_pages - 1 is in space; logical_pages is the first out.
        validate_batch([SharePair(98, 99)], 100, 16)
        with pytest.raises(ShareError, match="outside logical space"):
            validate_batch([SharePair(98, 100)], 100, 16)

    def test_chain_detected_regardless_of_pair_order(self):
        # Overlap check must be order-independent: the chained LPN may
        # appear as a source before OR after the pair that writes it.
        with pytest.raises(ShareError):
            validate_batch([SharePair(6, 5), SharePair(5, 10)], 100, 16)
        with pytest.raises(ShareError):
            validate_batch([SharePair(5, 10), SharePair(6, 5)], 100, 16)

    def test_self_chain_via_distinct_pairs_rejected(self):
        # a->b and b->a in one batch: both LPNs are dst and src at once.
        with pytest.raises(ShareError):
            validate_batch([SharePair(3, 4), SharePair(4, 3)], 100, 16)

    def test_ftl_accepts_exactly_max_share_batch(self, small_ftl):
        limit = small_ftl.max_share_batch
        span = 2 * limit + 2
        assert small_ftl.logical_pages >= span
        for lpn in range(limit):
            small_ftl.write(lpn, ("src", lpn))
        pairs = [SharePair(limit + i, i) for i in range(limit)]
        small_ftl.share_batch(pairs)
        for lpn in range(limit):
            assert small_ftl.read(limit + lpn) == ("src", lpn)

    def test_ftl_rejects_max_share_batch_plus_one(self, small_ftl):
        limit = small_ftl.max_share_batch
        for lpn in range(limit + 1):
            small_ftl.write(lpn, ("src", lpn))
        pairs = [SharePair(limit + 1 + i, i) for i in range(limit + 1)]
        before = {lpn: small_ftl.read(lpn) for lpn in range(limit + 1)}
        with pytest.raises(ShareError):
            small_ftl.share_batch(pairs)
        # Rejection happens before any state change.
        for lpn, value in before.items():
            assert small_ftl.read(lpn) == value
        for i in range(limit + 1):
            assert not small_ftl.is_mapped(limit + 1 + i)


class TestSharePerStrategy:
    """The batch-boundary and overlap regressions above, re-run against
    every L2P backing — plus the remap-into-unmapped-run cases where the
    compact layouts (runs, groups, delta anchors) do real work."""

    def test_share_resolves_and_reads_back(self, strategy_ftl):
        ftl = strategy_ftl
        for lpn in range(8):
            ftl.write(lpn, ("src", lpn))
        ftl.share_batch([SharePair(20 + i, i) for i in range(8)])
        for i in range(8):
            assert ftl.read(20 + i) == ("src", i)
            assert ftl.read(i) == ("src", i)
        ftl.check_invariants()

    def test_cross_pair_overlap_rejected_without_state_change(
            self, strategy_ftl):
        ftl = strategy_ftl
        for lpn in range(4):
            ftl.write(lpn, ("v", lpn))
        # Pair 2's destination is pair 1's source: chained batch.
        with pytest.raises(ShareError):
            ftl.share_batch([SharePair(10, 2), SharePair(2, 3)])
        for lpn in range(4):
            assert ftl.read(lpn) == ("v", lpn)
        assert not ftl.is_mapped(10)
        ftl.check_invariants()

    def test_exactly_max_batch_commits_atomically(self, strategy_ftl):
        ftl = strategy_ftl
        limit = ftl.max_share_batch
        for lpn in range(limit):
            ftl.write(lpn, ("s", lpn))
        ftl.share_batch([SharePair(limit + i, i) for i in range(limit)])
        for i in range(limit):
            assert ftl.read(limit + i) == ("s", i)
        ftl.check_invariants()

    def test_one_past_max_batch_rejected_without_state_change(
            self, strategy_ftl):
        ftl = strategy_ftl
        limit = ftl.max_share_batch
        for lpn in range(limit + 1):
            ftl.write(lpn, ("s", lpn))
        snapshot = ftl.fwd.snapshot()
        with pytest.raises(ShareError):
            ftl.share_batch(
                [SharePair(limit + 1 + i, i) for i in range(limit + 1)])
        assert ftl.fwd.snapshot() == snapshot
        ftl.check_invariants()

    def test_unmapped_source_rejected_without_state_change(
            self, strategy_ftl):
        ftl = strategy_ftl
        ftl.write(0, ("v", 0))
        snapshot = ftl.fwd.snapshot()
        # Second pair's source was never written; the whole batch fails.
        with pytest.raises(ShareError):
            ftl.share_batch([SharePair(10, 0), SharePair(11, 5)])
        assert ftl.fwd.snapshot() == snapshot
        with pytest.raises(UnmappedPageError):
            ftl.read(10)
        ftl.check_invariants()

    def test_remap_into_unmapped_destination_run(self, strategy_ftl):
        # Regression mirrored from the RunLengthMap unit tests: a SHARE
        # whose destination sits in untouched address space must create
        # the mapping without disturbing its (unmapped) neighbours.
        ftl = strategy_ftl
        for lpn in range(4):
            ftl.write(lpn, ("v", lpn))
        ftl.share(30, 1, 1)
        assert ftl.read(30) == ("v", 1)
        assert not ftl.is_mapped(29)
        assert not ftl.is_mapped(31)
        ftl.check_invariants()

    def test_remap_interior_of_sequential_run(self, strategy_ftl):
        # A remap landing mid-run splits extents / diverges anchors but
        # must stay read-correct on both sides of the split.
        ftl = strategy_ftl
        for lpn in range(10, 18):
            ftl.write(lpn, ("seq", lpn))
        ftl.write(40, ("other", 40))
        ftl.share(14, 40, 1)
        assert ftl.read(14) == ("other", 40)
        assert ftl.read(13) == ("seq", 13)
        assert ftl.read(15) == ("seq", 15)
        ftl.check_invariants()

    def test_remap_splits_accounting_per_strategy(self, strategy_ftl):
        ftl = strategy_ftl
        for lpn in range(8):
            ftl.write(lpn, ("seq", lpn))
        before = ftl.fwd.remap_splits
        ftl.share(3, 7, 1)                # interior remap of the run
        after = ftl.fwd.remap_splits
        if ftl.fwd.name == "flat":
            assert after == before == 0   # nothing to fragment
        else:
            assert after >= before        # compact layouts may pay

    def test_overwrite_after_share_keeps_source_intact(self, strategy_ftl):
        ftl = strategy_ftl
        ftl.write(0, ("v", 0))
        ftl.share(5, 0, 1)
        ftl.write(5, ("new", 5))          # break the share by rewriting
        assert ftl.read(5) == ("new", 5)
        assert ftl.read(0) == ("v", 0)
        ftl.check_invariants()
