"""Unit tests for flash geometry arithmetic."""

import pytest

from repro.flash.geometry import KIB, FlashGeometry


def test_defaults_consistent():
    geo = FlashGeometry()
    assert geo.total_pages == geo.block_count * geo.pages_per_block
    assert geo.raw_capacity_bytes == geo.total_pages * geo.page_size
    assert geo.logical_pages < geo.total_pages


def test_overprovisioning_hides_capacity():
    geo = FlashGeometry(overprovision_ratio=0.25)
    assert geo.logical_pages == int(geo.total_pages * 0.75)


def test_block_of_and_page_in_block():
    geo = FlashGeometry.small()
    ppn = geo.pages_per_block * 3 + 5
    assert geo.block_of(ppn) == 3
    assert geo.page_in_block(ppn) == 5
    assert geo.first_ppn(3) == geo.pages_per_block * 3


def test_ppn_bounds_checked():
    geo = FlashGeometry.small()
    with pytest.raises(ValueError):
        geo.block_of(geo.total_pages)
    with pytest.raises(ValueError):
        geo.check_ppn(-1)


def test_block_bounds_checked():
    geo = FlashGeometry.small()
    with pytest.raises(ValueError):
        geo.first_ppn(geo.block_count)


@pytest.mark.parametrize("kwargs", [
    {"page_size": 0},
    {"page_size": 1000},           # not a multiple of 512
    {"pages_per_block": 0},
    {"block_count": 1},
    {"overprovision_ratio": 0.0},
    {"overprovision_ratio": 0.5},
])
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(ValueError):
        FlashGeometry(**kwargs)


def test_small_supports_page_sizes():
    for size in (4 * KIB, 8 * KIB, 16 * KIB):
        geo = FlashGeometry.small(page_size=size)
        assert geo.page_size == size
