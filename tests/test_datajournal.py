"""Tests for the data=journal filesystem mode (the Section 6.3 / JFTL
comparison)."""

import pytest

from repro.errors import FileSystemError
from repro.host.datajournal import CheckpointMode, DataJournalingFs
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def env(clock):
    fs = HostFs(Ssd(clock, small_ssd_config()), FsConfig(journal_blocks=8))
    return fs


def make(fs, mode, journal_blocks=32):
    journal = DataJournalingFs(fs, mode, journal_blocks=journal_blocks)
    data_file = fs.create("/data")
    data_file.fallocate(64)
    return journal, data_file


class TestTransactions:
    @pytest.mark.parametrize("mode", list(CheckpointMode))
    def test_committed_writes_readable(self, env, mode):
        journal, file = make(env, mode)
        journal.begin()
        journal.journaled_write(file, 3, "three")
        journal.journaled_write(file, 4, "four")
        journal.commit()
        assert journal.read(file, 3) == "three"
        assert journal.read(file, 4) == "four"

    @pytest.mark.parametrize("mode", list(CheckpointMode))
    def test_checkpoint_makes_home_copies_visible(self, env, mode):
        journal, file = make(env, mode)
        journal.begin()
        journal.journaled_write(file, 3, "payload")
        journal.commit()
        journal.checkpoint()
        # Direct file read (bypassing the journal) now sees the data.
        assert file.pread_block(3) == "payload"
        assert journal.read(file, 3) == "payload"

    def test_write_outside_txn_rejected(self, env):
        journal, file = make(env, CheckpointMode.SHARE)
        with pytest.raises(FileSystemError):
            journal.journaled_write(file, 0, "x")

    def test_double_begin_rejected(self, env):
        journal, __ = make(env, CheckpointMode.SHARE)
        journal.begin()
        with pytest.raises(FileSystemError):
            journal.begin()

    def test_oversized_txn_rejected(self, env):
        journal, file = make(env, CheckpointMode.SHARE, journal_blocks=8)
        journal.begin()
        for block in range(10):
            journal.journaled_write(file, block, block)
        with pytest.raises(FileSystemError):
            journal.commit()

    @pytest.mark.parametrize("mode", list(CheckpointMode))
    def test_journal_wrap_triggers_checkpoint(self, env, mode):
        journal, file = make(env, mode, journal_blocks=8)
        for i in range(10):
            journal.begin()
            journal.journaled_write(file, i % 4, ("v", i))
            journal.commit()
        assert journal.stats.checkpoints > 0
        assert journal.read(file, 1) == ("v", 9)

    @pytest.mark.parametrize("mode", list(CheckpointMode))
    def test_newest_copy_wins_at_checkpoint(self, env, mode):
        journal, file = make(env, mode)
        for version in range(3):
            journal.begin()
            journal.journaled_write(file, 5, ("v", version))
            journal.commit()
        journal.checkpoint()
        assert file.pread_block(5) == ("v", 2)


class TestWriteAccounting:
    def run_workload(self, mode, ops=120):
        clock = SimClock()
        fs = HostFs(Ssd(clock, small_ssd_config()),
                    FsConfig(journal_blocks=8))
        journal, file = make(fs, mode, journal_blocks=32)
        for i in range(ops):
            journal.begin()
            journal.journaled_write(file, i % 48, ("v", i))
            journal.commit()
        journal.checkpoint()
        return journal.stats, fs.ssd.stats

    def test_classic_writes_everything_twice(self):
        stats, __ = self.run_workload(CheckpointMode.CLASSIC)
        assert stats.checkpoint_writes > 0
        # Every journaled page got a second (home) write at checkpoint.
        assert stats.checkpoint_writes >= stats.journaled_pages * 0.6

    def test_share_checkpoints_write_nothing(self):
        stats, __ = self.run_workload(CheckpointMode.SHARE)
        assert stats.checkpoint_writes == 0
        assert stats.checkpoint_share_pairs > 0

    def test_share_roughly_halves_device_writes(self):
        __, classic_dev = self.run_workload(CheckpointMode.CLASSIC)
        __, share_dev = self.run_workload(CheckpointMode.SHARE)
        assert (share_dev.host_write_pages
                < classic_dev.host_write_pages * 0.75)


class TestSharedJournalReuse:
    def test_journal_slot_reuse_preserves_home_content(self, env):
        """After a SHARE checkpoint the journal blocks are rewritten by
        later transactions; the home blocks must keep the old content."""
        journal, file = make(env, CheckpointMode.SHARE, journal_blocks=8)
        journal.begin()
        journal.journaled_write(file, 1, "epoch-1")
        journal.commit()
        journal.checkpoint()
        for i in range(6):
            journal.begin()
            journal.journaled_write(file, 2 + i % 3, ("later", i))
            journal.commit()
        journal.checkpoint()
        assert file.pread_block(1) == "epoch-1"
        env.ssd.ftl.check_invariants()
