"""Tests for the text-plot analysis helpers."""

import pytest

from repro.analysis import ascii_cdf, ascii_histogram, compare_cdfs


class TestHistogram:
    def test_renders_bars_and_counts(self):
        values = [1.0] * 10 + [100.0] * 2
        text = ascii_histogram(values, bins=4, width=20, title="t")
        assert text.startswith("t")
        assert "#" in text
        assert "10" in text

    def test_constant_values(self):
        text = ascii_histogram([5.0, 5.0], bins=4)
        assert "samples = 5" in text

    def test_log_bins_cover_orders_of_magnitude(self):
        values = [0.1, 1.0, 10.0, 100.0]
        text = ascii_histogram(values, bins=3, width=10)
        # Every value lands in some bin: counts sum to 4.
        total = sum(int(line.rsplit(" ", 1)[-1])
                    for line in text.splitlines())
        assert total == 4

    def test_linear_bins(self):
        text = ascii_histogram([1, 2, 3, 4], bins=2, log_bins=False)
        assert "|" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0], bins=0)


class TestCdf:
    def test_percentile_rows(self):
        values = list(range(1, 101))
        text = ascii_cdf(values, points=(50, 99))
        assert "p50" in text
        assert "p99" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf([])


class TestCompare:
    def test_ratio_column(self):
        slow = [10.0] * 50 + [100.0] * 50
        fast = [5.0] * 50 + [50.0] * 50
        text = compare_cdfs({"dwb_on": slow, "share": fast},
                            points=(50, 99))
        assert "ratio vs dwb_on" in text
        assert "2.00x" in text

    def test_single_series_has_no_ratio(self):
        text = compare_cdfs({"only": [1.0, 2.0]}, points=(50,))
        assert "ratio" not in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            compare_cdfs({"a": []})
        with pytest.raises(ValueError):
            compare_cdfs({})
