"""Integration-grade unit tests for the page-mapping FTL: basic I/O, TRIM,
SHARE semantics, garbage collection, share-table spills, and the
check_invariants() self-check."""

import pytest

from repro.errors import OutOfSpaceError, ShareError, UnmappedPageError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import SharePair


def make_ftl(share_entries=250, page_size=4096, op=0.125, policy="log"):
    geo = FlashGeometry(page_size=page_size, pages_per_block=32,
                        block_count=64, overprovision_ratio=op)
    nand = NandArray(geo)
    return PageMappingFtl(nand, FtlConfig(map_block_count=4,
                                          share_table_entries=share_entries,
                                          share_overflow_policy=policy))


@pytest.fixture
def ftl():
    return make_ftl()


class TestBasicIo:
    def test_write_read_roundtrip(self, ftl):
        ftl.write(5, "five")
        assert ftl.read(5) == "five"
        assert ftl.stats.host_page_writes == 1
        assert ftl.stats.host_page_reads == 1

    def test_overwrite_replaces(self, ftl):
        ftl.write(5, "old")
        ftl.write(5, "new")
        assert ftl.read(5) == "new"

    def test_read_unmapped_raises(self, ftl):
        with pytest.raises(UnmappedPageError):
            ftl.read(5)

    def test_is_mapped(self, ftl):
        assert not ftl.is_mapped(5)
        ftl.write(5, "x")
        assert ftl.is_mapped(5)

    def test_lpn_bounds(self, ftl):
        with pytest.raises(ValueError):
            ftl.write(ftl.logical_pages, "x")
        with pytest.raises(ValueError):
            ftl.read(-1)

    def test_invariants_after_writes(self, ftl):
        for i in range(100):
            ftl.write(i % 37, ("v", i))
        ftl.check_invariants()


class TestTrim:
    def test_trim_unmaps(self, ftl):
        ftl.write(5, "x")
        ftl.trim(5)
        assert not ftl.is_mapped(5)
        with pytest.raises(UnmappedPageError):
            ftl.read(5)

    def test_trim_range(self, ftl):
        for i in range(10):
            ftl.write(i, i)
        ftl.trim(2, count=5)
        assert ftl.is_mapped(1)
        for i in range(2, 7):
            assert not ftl.is_mapped(i)
        assert ftl.is_mapped(7)
        assert ftl.stats.trim_pages == 5

    def test_trim_unmapped_is_noop(self, ftl):
        ftl.trim(5)
        assert ftl.stats.trim_pages == 0

    def test_trim_frees_space_for_gc(self, ftl):
        # Fill most of the logical space, trim it all, refill: GC must be
        # able to reclaim the trimmed blocks.
        n = ftl.logical_pages - 10
        for i in range(n):
            ftl.write(i, i)
        ftl.trim(0, count=n)
        for i in range(n):
            ftl.write(i, ("again", i))
        ftl.check_invariants()


class TestShare:
    def test_share_redirects_dst(self, ftl):
        ftl.write(1, "src-data")
        ftl.share(2, 1)
        assert ftl.read(2) == "src-data"
        assert ftl.fwd.lookup(2) == ftl.fwd.lookup(1)
        ftl.check_invariants()

    def test_share_keeps_snapshot_when_source_moves_on(self, ftl):
        ftl.write(1, "v1")
        ftl.share(2, 1)
        ftl.write(1, "v2")
        assert ftl.read(1) == "v2"
        assert ftl.read(2) == "v1"
        ftl.check_invariants()

    def test_share_overwrites_dst_mapping(self, ftl):
        ftl.write(1, "one")
        ftl.write(2, "two")
        ftl.share(2, 1)
        assert ftl.read(2) == "one"

    def test_share_unmapped_source_rejected(self, ftl):
        with pytest.raises(ShareError):
            ftl.share(2, 1)

    def test_share_range(self, ftl):
        for i in range(4):
            ftl.write(10 + i, ("s", i))
        ftl.share(100, 10, length=4)
        for i in range(4):
            assert ftl.read(100 + i) == ("s", i)

    def test_share_batch_atomic_limit(self, ftl):
        limit = ftl.max_share_batch
        for i in range(2):
            ftl.write(i, i)
        too_big = [SharePair(1000 + i, i % 2) for i in range(limit + 1)]
        with pytest.raises(ShareError):
            ftl.share_batch(too_big)

    def test_share_stats(self, ftl):
        ftl.write(1, "x")
        ftl.share(2, 1)
        ftl.share_batch([SharePair(3, 1), SharePair(4, 1)])
        assert ftl.stats.share_commands == 2
        assert ftl.stats.share_pairs == 3

    def test_trim_of_source_keeps_dst_alive(self, ftl):
        ftl.write(1, "keep")
        ftl.share(2, 1)
        ftl.trim(1)
        assert ftl.read(2) == "keep"
        ftl.check_invariants()

    def test_share_after_share(self, ftl):
        ftl.write(1, "x")
        ftl.share(2, 1)
        ftl.share(3, 2)
        assert ftl.read(3) == "x"
        # All three LPNs share one physical page.
        ppns = {ftl.fwd.lookup(i) for i in (1, 2, 3)}
        assert len(ppns) == 1


class TestShareOverflowCopyPolicy:
    """The 'copy' overflow policy reconciles the oldest extra reference
    with a private page copy when the DRAM table is full."""

    def test_spill_materialises_copy(self):
        ftl = make_ftl(share_entries=2, policy="copy")
        ftl.write(1, "payload")
        ftl.share(10, 1)
        ftl.share(11, 1)
        assert ftl.rev.is_full
        ftl.share(12, 1)  # must reconcile the oldest extra
        assert ftl.stats.share_spills == 1
        for lpn in (10, 11, 12):
            assert ftl.read(lpn) == "payload"
        ftl.check_invariants()

    def test_spilled_lpn_becomes_private(self):
        ftl = make_ftl(share_entries=1, policy="copy")
        ftl.write(1, "v1")
        ftl.share(10, 1)
        ftl.share(11, 1)  # spills LPN 10 into its own copy
        assert ftl.fwd.lookup(10) != ftl.fwd.lookup(1)
        ftl.write(1, "v2")
        assert ftl.read(10) == "v1"
        assert ftl.read(11) == "v1"


class TestShareOverflowLogPolicy:
    """The default 'log' policy keeps overflowed reverse mappings
    resolvable from the mapping log: no data copies, GC pays lookups."""

    def test_overflow_makes_no_copies(self):
        ftl = make_ftl(share_entries=2, policy="log")
        ftl.write(1, "payload")
        programs_before = ftl.nand.total_programs
        for dst in range(10, 20):
            ftl.share(dst, 1)
        # Only mapping-log pages were programmed, no data copies.
        data_programs = (ftl.nand.total_programs - programs_before
                         - ftl.map_page_writes)
        assert ftl.stats.share_spills == 0
        assert ftl.stats.share_log_spills == 8  # 10 extras, 2 fit in DRAM
        assert ftl.rev.spilled_entries == 8
        for dst in range(10, 20):
            assert ftl.read(dst) == "payload"
        ftl.check_invariants()

    def test_gc_resolves_spilled_refs(self):
        import random
        rng = random.Random(3)
        ftl = make_ftl(share_entries=1, policy="log")
        ftl.write(1, "shared")
        for dst in range(10, 14):
            ftl.share(dst, 1)
        # Random churn over most of the space mixes hot and cold pages in
        # every block, so GC must move valid pages — including the shared
        # one, whose overflowed reverse mappings need a log lookup.
        span = ftl.logical_pages - 50
        for i in range(ftl.logical_pages * 4):
            ftl.write(20 + rng.randrange(span), ("churn", i))
        assert ftl.stats.gc_events > 0
        assert ftl.stats.copyback_pages > 0
        for dst in range(10, 14):
            assert ftl.read(dst) == "shared"
        assert ftl.stats.spill_lookups > 0
        ftl.check_invariants()

    def test_spilled_entries_released_on_overwrite(self):
        ftl = make_ftl(share_entries=1, policy="log")
        ftl.write(1, "v1")
        ftl.share(10, 1)
        ftl.share(11, 1)  # spills
        assert ftl.rev.spilled_entries == 1
        ftl.write(11, "private")
        assert ftl.rev.spilled_entries == 0
        ftl.check_invariants()

    def test_recovery_restores_spilled_refs(self):
        ftl = make_ftl(share_entries=1, policy="log")
        ftl.write(1, "v1")
        for dst in range(10, 14):
            ftl.share(dst, 1)
        recovered = PageMappingFtl.recover(
            ftl.nand, FtlConfig(map_block_count=4, share_table_entries=1))
        for dst in range(10, 14):
            assert recovered.read(dst) == "v1"
        recovered.check_invariants()


class TestGarbageCollection:
    def test_gc_reclaims_overwritten_space(self, ftl):
        hot = ftl.logical_pages // 4
        for i in range(ftl.logical_pages * 3):
            ftl.write(i % hot, ("w", i))
        assert ftl.stats.gc_events > 0
        assert ftl.free_block_count > 0
        ftl.check_invariants()

    def test_gc_preserves_data(self, ftl):
        hot = 50
        for i in range(ftl.logical_pages * 2):
            ftl.write(i % hot, ("w", i % hot, i // hot))
        # After the dust settles every hot LPN holds its newest version.
        last_round = {}
        for i in range(ftl.logical_pages * 2):
            last_round[i % hot] = ("w", i % hot, i // hot)
        for lpn, expected in last_round.items():
            assert ftl.read(lpn) == expected

    def test_gc_moves_shared_pages_intact(self, ftl):
        ftl.write(1, "shared-payload")
        ftl.share(2, 1)
        # Churn unrelated LPNs to force GC over the shared page's block.
        for i in range(ftl.logical_pages * 3):
            ftl.write(3 + (i % 100), ("churn", i))
        assert ftl.stats.gc_events > 0
        assert ftl.read(1) == "shared-payload"
        assert ftl.read(2) == "shared-payload"
        assert ftl.fwd.lookup(1) == ftl.fwd.lookup(2)
        ftl.check_invariants()

    def test_overcommit_raises(self):
        ftl = make_ftl(op=0.02)
        with pytest.raises(OutOfSpaceError):
            # Writing every logical page repeatedly with no invalidation
            # headroom must eventually fail rather than loop forever.
            for round_number in range(10):
                for lpn in range(ftl.logical_pages):
                    ftl.write(lpn, (round_number, lpn))

    def test_wear_spreads_over_blocks(self, ftl):
        hot = ftl.logical_pages // 4
        for i in range(ftl.logical_pages * 4):
            ftl.write(i % hot, i)
        summary = ftl.nand.wear_summary()
        assert summary["max"] >= 1


class TestChannelStriping:
    """Host allocation spreads across channels (block % channel_count)."""

    def make_striped(self, channels, block_count=64):
        geo = FlashGeometry(page_size=4096, pages_per_block=32,
                            block_count=block_count,
                            overprovision_ratio=0.125,
                            channel_count=channels)
        nand = NandArray(geo)
        return PageMappingFtl(nand, FtlConfig(map_block_count=4))

    def channel_of(self, ftl, lpn):
        ppn = ftl.fwd.lookup(lpn)
        geo = ftl.geometry
        return (ppn // geo.pages_per_block) % geo.channel_count

    def test_sequential_writes_rotate_over_channels(self):
        channels = 4
        ftl = self.make_striped(channels)
        for lpn in range(channels * 8):
            ftl.write(lpn, ("v", lpn))
        seen = [self.channel_of(ftl, lpn) for lpn in range(channels * 8)]
        # One page at a time, round-robin: consecutive writes land on
        # consecutive channels.
        for index in range(1, len(seen)):
            assert seen[index] == (seen[index - 1] + 1) % channels
        assert set(seen) == set(range(channels))

    def test_every_channel_gets_its_own_active_block(self):
        channels = 4
        ftl = self.make_striped(channels)
        for lpn in range(channels):
            ftl.write(lpn, ("v", lpn))
        actives = {ch: block for ch, block in ftl._active_host.items()
                   if block is not None}
        assert len(actives) == channels
        for channel, block in actives.items():
            assert block % channels == channel

    def test_single_channel_degenerates_to_serial_allocation(self):
        striped = self.make_striped(1)
        plain = make_ftl()
        for lpn in range(40):
            striped.write(lpn, ("v", lpn))
            plain.write(lpn, ("v", lpn))
        assert ([striped.fwd.lookup(lpn) for lpn in range(40)]
                == [plain.fwd.lookup(lpn) for lpn in range(40)])

    def test_striped_device_survives_gc_and_invariants(self):
        channels = 2
        ftl = self.make_striped(channels, block_count=32)
        span = 200
        for step in range(5 * span):
            ftl.write(step % span, ("v", step))
        ftl.check_invariants()
        assert ftl.stats.gc_events > 0
        channels_used = {self.channel_of(ftl, lpn) for lpn in range(span)}
        assert channels_used == set(range(channels))

    def test_work_ledger_tags_channels(self):
        channels = 4
        ftl = self.make_striped(channels)
        for lpn in range(channels * 2):
            ftl.write(lpn, ("v", lpn))
        work = ftl.take_work()
        host = [entry for entry in work if entry[0] == "host_program"]
        assert len(host) == channels * 2
        assert {channel for __, channel in host} == set(range(channels))
        assert ftl.take_work() == []   # drained
