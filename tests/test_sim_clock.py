"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import SimClock


def test_starts_at_zero():
    clock = SimClock()
    assert clock.now_us == 0
    assert clock.now_seconds == 0.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(100)
    clock.advance(250)
    assert clock.now_us == 350


def test_fractional_microseconds_round():
    clock = SimClock()
    clock.advance(0.4)
    assert clock.now_us == 0
    clock.advance(0.6)
    assert clock.now_us == 1


def test_unit_conversions():
    clock = SimClock()
    clock.advance(1_500_000)
    assert clock.now_seconds == pytest.approx(1.5)
    assert clock.now_ms == pytest.approx(1500.0)


def test_elapsed_since():
    clock = SimClock()
    clock.advance(100)
    mark = clock.now_us
    clock.advance(42)
    assert clock.elapsed_since(mark) == 42


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(start_us=-5)


def test_reset():
    clock = SimClock()
    clock.advance(10)
    clock.reset()
    assert clock.now_us == 0


def test_custom_start():
    clock = SimClock(start_us=77)
    assert clock.now_us == 77
