"""Tests for the full YCSB workload suite (B-E beyond the paper's A/F)
and the couch range-scan primitive behind workload E."""

import pytest

from repro.bench.harness import build_couch_stack
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload

from conftest import small_ssd_config


@pytest.fixture
def driver(clock):
    stack = build_couch_stack(CommitMode.SHARE, 600, 3000)
    driver = YcsbDriver(stack.store, stack.clock,
                        YcsbConfig(record_count=600))
    driver.load()
    return driver


class TestScanPrimitive:
    @pytest.fixture
    def store(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        store = CouchStore(fs, "/db", CommitMode.SHARE,
                           CouchConfig(leaf_capacity=4, internal_fanout=8,
                                       prealloc_blocks=64))
        for key in range(0, 100, 2):
            store.set(key, ("v", key))
        store.commit()
        return store

    def test_scan_from_key(self, store):
        got = store.scan(10, 5)
        assert got == [(k, ("v", k)) for k in (10, 12, 14, 16, 18)]

    def test_scan_from_missing_key_starts_at_successor(self, store):
        got = store.scan(11, 3)
        assert [k for k, __ in got] == [12, 14, 16]

    def test_scan_past_end(self, store):
        assert store.scan(98, 10) == [(98, ("v", 98))]
        assert store.scan(200, 5) == []

    def test_scan_empty_store(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        store = CouchStore(fs, "/e", CommitMode.SHARE)
        assert store.scan(0, 5) == []

    def test_scan_limit_validated(self, store):
        with pytest.raises(ValueError):
            store.tree.range_from(0, 0)


class TestWorkloadMixes:
    def test_b_is_mostly_reads(self, driver):
        result = driver.run(YcsbWorkload.B, 1000, batch_size=8)
        assert result.writes < 120
        assert result.reads > 880

    def test_c_is_all_reads(self, driver):
        result = driver.run(YcsbWorkload.C, 500, batch_size=8)
        assert result.writes == 0
        assert result.reads == 500

    def test_d_inserts_new_keys(self, driver):
        before = driver._next_insert_key
        result = driver.run(YcsbWorkload.D, 1000, batch_size=8)
        assert driver._next_insert_key > before
        assert result.writes == driver._next_insert_key - before
        # Inserted keys are readable.
        assert driver.store.get(before) is not None

    def test_d_latest_skews_to_recent(self, driver):
        driver.run(YcsbWorkload.D, 500, batch_size=8)
        span = driver._next_insert_key
        draws = [driver._latest_key() for __ in range(2000)]
        recent = sum(1 for key in draws if key > span * 0.9)
        assert recent > 2000 * 0.3

    def test_e_scans(self, driver):
        result = driver.run(YcsbWorkload.E, 300, batch_size=8)
        assert result.reads > 250  # scans count as reads
        assert result.writes < 50

    def test_read_heavy_workloads_write_fewer_pages(self, clock):
        from repro.sim.clock import SimClock
        volumes = {}
        for workload in (YcsbWorkload.A, YcsbWorkload.B, YcsbWorkload.C):
            stack = build_couch_stack(CommitMode.ORIGINAL, 600, 3000)
            local_driver = YcsbDriver(stack.store, stack.clock,
                                      YcsbConfig(record_count=600))
            local_driver.load()
            stack.ssd.reset_measurement()
            local_driver.run(workload, 600, batch_size=8)
            volumes[workload] = stack.ssd.stats.host_write_pages
        assert volumes[YcsbWorkload.C] < volumes[YcsbWorkload.B]
        assert volumes[YcsbWorkload.B] < volumes[YcsbWorkload.A]
