"""Integration tests for the InnoDB engine: the three flush modes and
their write-count signatures (the mechanism behind Figures 5 and 6)."""

import pytest

from repro.errors import EngineError
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig


def make_engine(mode, buffer_pages=64, flush_batch=16, clock=None):
    clock = clock or SimClock()
    geo = FlashGeometry(page_size=4096, pages_per_block=64, block_count=256,
                        overprovision_ratio=0.1)
    data = Ssd(clock, SsdConfig(geometry=geo, timing=FAST_TIMING,
                                ftl=FtlConfig()))
    log = Ssd(clock, SsdConfig(geometry=FlashGeometry.small(),
                               timing=FAST_TIMING, share_enabled=False))
    engine = InnoDBEngine(mode, data, log, InnoDBConfig(
        buffer_pool_pages=buffer_pages, flush_batch_pages=flush_batch))
    return clock, data, log, engine


def churn(engine, ops=3000, keys=600):
    engine.create_table("t")
    for i in range(ops):
        with engine.transaction() as txn:
            txn.put("t", i % keys, ("row", i))


class TestBasics:
    def test_create_and_query_table(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with engine.transaction() as txn:
            txn.put("t", 1, "one")
            assert txn.get("t", 1) == "one"
        with engine.transaction() as txn:
            assert txn.get("t", 1) == "one"

    def test_duplicate_table_rejected(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with pytest.raises(EngineError):
            engine.create_table("t")

    def test_unknown_table_rejected(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        with pytest.raises(EngineError):
            with engine.transaction() as txn:
                txn.get("missing", 1)

    def test_nested_transaction_rejected(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with pytest.raises(EngineError):
            with engine.transaction():
                with engine.transaction():
                    pass

    def test_transaction_abort_releases_guard(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with pytest.raises(RuntimeError):
            with engine.transaction():
                raise RuntimeError("boom")
        with engine.transaction() as txn:  # must not raise 'nested'
            txn.put("t", 1, "ok")

    def test_abort_rolls_back_puts_and_deletes(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with engine.transaction() as txn:
            txn.put("t", 1, "keep-1")
            txn.put("t", 2, "keep-2")
        with pytest.raises(RuntimeError):
            with engine.transaction() as txn:
                txn.put("t", 1, "doomed")       # overwrite
                txn.delete("t", 2)               # delete
                txn.put("t", 3, "phantom")       # insert
                raise RuntimeError("abort")
        with engine.transaction() as txn:
            assert txn.get("t", 1) == "keep-1"
            assert txn.get("t", 2) == "keep-2"
            assert txn.get("t", 3) is None

    def test_abort_discards_uncommitted_redo(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with pytest.raises(RuntimeError):
            with engine.transaction() as txn:
                txn.put("t", 1, "doomed")
                raise RuntimeError("abort")
        with engine.transaction() as txn:
            txn.put("t", 2, "committed")
        records = [r for __, r in engine.redo.replay_records()]
        assert ("put", "t", 1, "doomed") not in records
        assert ("put", "t", 2, "committed") in records

    def test_abort_does_not_disturb_earlier_ops_in_other_tables(self):
        __, __, __, engine = make_engine(FlushMode.SHARE)
        engine.create_table("a")
        engine.create_table("b")
        with engine.transaction() as txn:
            txn.put("a", 1, "x")
        with pytest.raises(ValueError):
            with engine.transaction() as txn:
                txn.put("b", 1, "y")
                raise ValueError("abort")
        with engine.transaction() as txn:
            assert txn.get("a", 1) == "x"
            assert txn.get("b", 1) is None

    def test_range_through_transaction(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with engine.transaction() as txn:
            for key in range(10):
                txn.put("t", key, key)
        with engine.transaction() as txn:
            assert txn.range("t", 3, 6) == [(3, 3), (4, 4), (5, 5), (6, 6)]

    def test_delete(self):
        __, __, __, engine = make_engine(FlushMode.DWB_OFF)
        engine.create_table("t")
        with engine.transaction() as txn:
            txn.put("t", 1, "x")
            assert txn.delete("t", 1)
            assert not txn.delete("t", 1)


class TestFlushModes:
    def test_dwb_on_doubles_data_writes(self):
        results = {}
        for mode in (FlushMode.DWB_ON, FlushMode.DWB_OFF):
            __, data, __, engine = make_engine(mode)
            churn(engine)
            results[mode] = data.stats.host_write_pages
        # Doublewrite writes every flushed page twice; the remaining
        # traffic (journal metadata) is shared.
        assert results[FlushMode.DWB_ON] > results[FlushMode.DWB_OFF] * 1.8

    def test_share_writes_match_dwb_off(self):
        results = {}
        for mode in (FlushMode.SHARE, FlushMode.DWB_OFF):
            __, data, __, engine = make_engine(mode)
            churn(engine)
            results[mode] = data.stats.host_write_pages
        assert results[FlushMode.SHARE] == pytest.approx(
            results[FlushMode.DWB_OFF], rel=0.05)

    def test_share_mode_issues_share_commands(self):
        __, data, __, engine = make_engine(FlushMode.SHARE)
        churn(engine)
        assert data.stats.share_pairs > 0
        assert engine.flush_batches > 0

    def test_non_share_modes_issue_no_shares(self):
        for mode in (FlushMode.DWB_ON, FlushMode.DWB_OFF):
            __, data, __, engine = make_engine(mode)
            churn(engine)
            assert data.stats.share_pairs == 0

    def test_share_content_correct_after_flush(self):
        __, data, __, engine = make_engine(FlushMode.SHARE)
        churn(engine, ops=2000, keys=400)
        engine.pool.drop_clean()
        with engine.transaction() as txn:
            for key in range(0, 400, 37):
                row = txn.get("t", key)
                assert row is not None
                assert row[0] == "row"

    def test_log_device_used_by_all_modes(self):
        for mode in FlushMode:
            __, __, log, engine = make_engine(mode)
            churn(engine, ops=200)
            assert log.stats.host_write_pages > 0


class TestCheckpoint:
    def test_checkpoint_flushes_everything(self):
        __, data, __, engine = make_engine(FlushMode.SHARE)
        churn(engine, ops=500)
        engine.checkpoint()
        assert engine.pool.dirty_count == 0

    def test_shutdown_is_clean(self):
        __, __, __, engine = make_engine(FlushMode.DWB_ON)
        churn(engine, ops=200)
        engine.shutdown()
        assert engine.pool.dirty_count == 0


class TestConfig:
    def test_flush_batch_bounded_by_dwb(self):
        with pytest.raises(ValueError):
            InnoDBConfig(flush_batch_pages=256, dwb_pages=128)

    def test_dirty_threshold_validated(self):
        with pytest.raises(ValueError):
            InnoDBConfig(dirty_flush_threshold=0.0)
