"""Tests for the X-FTL transactional baseline (Section 6.2): device-level
transaction semantics, GC interaction, crash atomicity, and the SQLite
XFTL journal mode."""

import pytest

from repro.errors import FtlError, PowerFailure
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.ssd.device import Ssd

from conftest import small_ssd_config


class TestDeviceTransactions:
    def test_staged_writes_invisible_until_commit(self, ssd):
        ssd.write(5, "old")
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 5, "new")
        assert ssd.read(5) == "old"
        ssd.commit_txn(txn)
        assert ssd.read(5) == "new"

    def test_txn_read_sees_shadow(self, ssd):
        ssd.write(5, "old")
        ssd.write(6, "committed")
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 5, "new")
        assert ssd.ftl.txn_read(txn, 5) == "new"     # shadow copy
        assert ssd.ftl.txn_read(txn, 6) == "committed"  # committed path
        ssd.commit_txn(txn)

    def test_abort_discards(self, ssd):
        ssd.write(5, "old")
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 5, "new")
        ssd.abort_txn(txn)
        assert ssd.read(5) == "old"
        ssd.ftl.check_invariants()

    def test_restage_within_txn(self, ssd):
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 5, "v1")
        ssd.write_txn(txn, 5, "v2")
        ssd.commit_txn(txn)
        assert ssd.read(5) == "v2"
        ssd.ftl.check_invariants()

    def test_unknown_txn_rejected(self, ssd):
        with pytest.raises(FtlError):
            ssd.write_txn(999, 5, "x")
        with pytest.raises(FtlError):
            ssd.commit_txn(999)
        with pytest.raises(FtlError):
            ssd.abort_txn(999)

    def test_capacity_limit(self, ssd):
        txn = ssd.begin_txn()
        limit = ssd.max_share_batch
        for lpn in range(limit):
            ssd.write_txn(txn, lpn, lpn)
        with pytest.raises(FtlError):
            ssd.write_txn(txn, limit, "overflow")

    def test_empty_commit_ok(self, ssd):
        txn = ssd.begin_txn()
        ssd.commit_txn(txn)

    def test_concurrent_transactions(self, ssd):
        a = ssd.begin_txn()
        b = ssd.begin_txn()
        ssd.write_txn(a, 1, "from-a")
        ssd.write_txn(b, 2, "from-b")
        ssd.commit_txn(b)
        assert ssd.read(2) == "from-b"
        assert not ssd.ftl.is_mapped(1)
        ssd.commit_txn(a)
        assert ssd.read(1) == "from-a"
        ssd.ftl.check_invariants()

    def test_commit_survives_power_cycle(self, ssd):
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 7, "durable")
        ssd.commit_txn(txn)
        ssd.power_cycle()
        assert ssd.read(7) == "durable"

    def test_uncommitted_lost_on_power_cycle(self, ssd):
        ssd.write(7, "old")
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 7, "staged")
        ssd.power_cycle()
        assert ssd.read(7) == "old"
        ssd.ftl.check_invariants()

    def test_crash_mid_commit_is_atomic(self, clock):
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        for lpn in (1, 2):
            ssd.write(lpn, ("old", lpn))
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 1, "n1")
        ssd.write_txn(txn, 2, "n2")
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            ssd.commit_txn(txn)
        ssd.power_cycle()
        assert ssd.read(1) == ("old", 1)
        assert ssd.read(2) == ("old", 2)

    def test_gc_moves_shadow_pages(self, ssd):
        ssd.write(0, "anchor")
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 1, "shadow-payload")
        # Churn hard so GC must relocate the shadow page's block.
        import random
        rng = random.Random(6)
        span = ssd.logical_pages - 50
        for i in range(ssd.logical_pages * 3):
            ssd.write(10 + rng.randrange(span - 10), ("churn", i))
        assert ssd.stats.gc_events > 0
        ssd.commit_txn(txn)
        assert ssd.read(1) == "shadow-payload"
        ssd.ftl.check_invariants()


class TestSqliteXftlMode:
    def make_db(self, faults=None):
        clock = SimClock()
        faults = faults or FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        db = SqliteLikeDb(fs, "/x.db", JournalMode.XFTL, page_count=1200,
                          faults=faults)
        return ssd, fs, faults, db

    def test_put_get(self):
        __, __, __, db = self.make_db()
        db.put(1, "one")
        assert db.get(1) == "one"

    def test_no_journal_files(self):
        __, fs, __, db = self.make_db()
        db.put(1, "x")
        assert fs.list_files() == ["/x.db"]

    def test_single_write_per_page(self):
        ssd, __, __, db = self.make_db()
        for i in range(200):
            db.put(i % 50, ("v", i))
        # Host writes ~= pages committed (plus bootstrap): no doubling.
        committed = db.pager.stats.pages_committed
        assert ssd.stats.host_write_pages < committed * 1.2

    def test_crash_mid_commit_rolls_back(self):
        faults = FaultPlan()
        ssd, fs, faults, db = self.make_db(faults)
        with db.transaction():
            db.put(1, "old-1")
            db.put(2, "old-2")
        faults.arm(PowerFailAfter("sqlite.xftl_write", nth=2))
        with pytest.raises(PowerFailure):
            with db.transaction():
                db.put(1, "new-1")
                db.put(2, "new-2")
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/x.db", JournalMode.XFTL,
                                page_count=1200)
        assert db2.get(1) == "old-1"
        assert db2.get(2) == "old-2"

    def test_reopen_after_clean_run(self):
        ssd, fs, __, db = self.make_db()
        for i in range(300):
            db.put(i % 60, ("v", i))
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/x.db", JournalMode.XFTL,
                                page_count=1200)
        for i in range(240, 300):
            assert db2.get(i % 60) == ("v", i)
