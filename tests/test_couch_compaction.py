"""Tests for both compaction algorithms (Figure 3 / Table 2) and the
crash-mid-compaction restart path."""

import pytest

from repro.couchstore.compaction import abandon_partial, compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd

from conftest import small_ssd_config


def loaded_store(clock, mode, keys=60, churn_rounds=3):
    ssd = Ssd(clock, small_ssd_config())
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    config = CouchConfig(leaf_capacity=4, internal_fanout=8,
                         prealloc_blocks=64)
    store = CouchStore(fs, "/db", mode, config)
    for key in range(keys):
        store.set(key, ("v0", key))
    store.commit()
    for round_number in range(1, churn_rounds + 1):
        for key in range(keys):
            store.set(key, (f"v{round_number}", key))
        store.commit()
    return ssd, fs, store


class TestCopyCompaction:
    def test_preserves_every_document(self, clock):
        __, __, store = loaded_store(clock, CommitMode.ORIGINAL)
        new_store, result = compact(store, clock)
        assert result.mode == "copy"
        assert result.docs_moved == 60
        for key in range(60):
            assert new_store.get(key) == ("v3", key)

    def test_resets_stale_ratio(self, clock):
        __, __, store = loaded_store(clock, CommitMode.ORIGINAL)
        assert store.stale_ratio > 0.3
        new_store, __ = compact(store, clock)
        assert new_store.stale_blocks == 0

    def test_new_file_replaces_old_path(self, clock):
        __, fs, store = loaded_store(clock, CommitMode.ORIGINAL)
        new_store, __ = compact(store, clock)
        assert new_store.path == "/db"
        assert fs.exists("/db")
        assert not fs.exists("/db.compact")

    def test_copies_every_document_byte(self, clock):
        ssd, __, store = loaded_store(clock, CommitMode.ORIGINAL)
        ssd.reset_measurement()
        __, result = compact(store, clock)
        # Copy compaction writes at least one page per document.
        assert result.written_bytes >= 60 * ssd.page_size


class TestShareCompaction:
    def test_preserves_every_document(self, clock):
        __, __, store = loaded_store(clock, CommitMode.SHARE)
        new_store, result = compact(store, clock)
        assert result.mode == "share"
        assert result.docs_moved == 60
        for key in range(60):
            assert new_store.get(key) == ("v3", key)

    def test_writes_no_document_pages(self, clock):
        ssd, __, store = loaded_store(clock, CommitMode.SHARE)
        ssd.reset_measurement()
        __, result = compact(store, clock)
        # Only index nodes + header (+ journal metadata) are written; all
        # 60 document pages move by remapping.
        assert result.written_bytes < 60 * ssd.page_size
        assert result.share_commands >= 1

    def test_reads_only_document_headers(self, clock):
        ssd, __, store = loaded_store(clock, CommitMode.SHARE)
        ssd.reset_measurement()
        __, result = compact(store, clock)
        # One header-page read per document (Table 2's residual cost).
        assert result.read_bytes == 60 * ssd.page_size

    def test_cheaper_than_copy(self, clock):
        from repro.sim.clock import SimClock
        results = {}
        for mode in CommitMode:
            local_clock = SimClock()
            __, __, store = loaded_store(local_clock, mode)
            __, results[mode] = compact(store, local_clock)
        copy_result = results[CommitMode.ORIGINAL]
        share_result = results[CommitMode.SHARE]
        assert share_result.written_bytes < copy_result.written_bytes / 3
        assert share_result.elapsed_seconds < copy_result.elapsed_seconds

    def test_survives_power_cycle_after_compaction(self, clock):
        ssd, fs, store = loaded_store(clock, CommitMode.SHARE)
        new_store, __ = compact(store, clock)
        ssd.power_cycle()
        reopened = CouchStore.reopen(fs, "/db", CommitMode.SHARE,
                                     store.config)
        for key in range(60):
            assert reopened.get(key) == ("v3", key)

    def test_old_file_trim_keeps_shared_pages_alive(self, clock):
        ssd, fs, store = loaded_store(clock, CommitMode.SHARE)
        new_store, __ = compact(store, clock)
        # The unlink of the old file trimmed its LPNs; the shared
        # physical pages must survive through the new file's references.
        assert ssd.stats.trim_commands > 0
        assert new_store.get(30) == ("v3", 30)
        ssd.ftl.check_invariants()


class TestCrashMidCompaction:
    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_partial_compaction_discarded_and_restartable(self, clock, mode):
        ssd, fs, store = loaded_store(clock, mode)
        # Simulate a crash halfway: build the partial file manually by
        # creating it and stopping before the switch-over.
        partial = fs.create("/db.compact")
        for key in range(10):
            partial.append_block(("partial", key))
        ssd.power_cycle()
        reopened = CouchStore.reopen(fs, "/db", mode, store.config)
        assert abandon_partial(reopened)
        assert not fs.exists("/db.compact")
        # The whole compaction restarts and completes.
        new_store, result = compact(reopened, clock)
        assert result.docs_moved == 60
        for key in range(60):
            assert new_store.get(key) == ("v3", key)

    def test_abandon_partial_noop_when_absent(self, clock):
        __, __, store = loaded_store(clock, CommitMode.SHARE)
        assert not abandon_partial(store)


class TestRepeatedCompaction:
    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_churn_compact_cycles(self, clock, mode):
        ssd, fs, store = loaded_store(clock, mode, keys=40, churn_rounds=2)
        for cycle in range(3):
            for key in range(40):
                store.set(key, ("cycle", cycle, key))
            store.commit()
            store, __ = compact(store, clock)
            for key in range(0, 40, 7):
                assert store.get(key) == ("cycle", cycle, key)
            ssd.ftl.check_invariants()
