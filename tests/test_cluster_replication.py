"""Tests for the shard-pair replication machinery: the epoch-fenced
delta log, the in-order applier (idempotence, gap refusal, stale-epoch
fencing), and the SHARE-record degradation path on the replica."""

import pytest

from repro.cluster import (REPL_SHARE, REPL_TRIM, REPL_WRITE, LogApplier,
                           ReplicationLog, ReplRecord)
from repro.errors import ClusterError, StaleEpochError, UnmappedPageError
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def replica(clock):
    return Ssd(clock, small_ssd_config(), name="replica")


# --------------------------------------------------------- ReplicationLog


class TestReplicationLog:
    def test_append_assigns_contiguous_seqs(self):
        log = ReplicationLog()
        first = log.append(REPL_WRITE, "a", 0, value="v0")
        second = log.append(REPL_TRIM, "a", 0)
        assert (first.seq, second.seq) == (1, 2)
        assert first.epoch == second.epoch == 0
        assert log.tip == 2
        assert len(log) == 2

    def test_append_rejects_unknown_kind(self):
        log = ReplicationLog()
        with pytest.raises(ValueError):
            log.append("compact", "a", 0)

    def test_append_record_fences_stale_epoch(self):
        log = ReplicationLog()
        stale = ReplRecord(0, 1, REPL_WRITE, "a", 0, "v")
        log.bump_epoch()
        with pytest.raises(StaleEpochError):
            log.append_record(stale)

    def test_append_record_refuses_gap(self):
        log = ReplicationLog()
        log.append(REPL_WRITE, "a", 0, value="v")
        skipped = ReplRecord(0, 3, REPL_WRITE, "b", 1, "w")
        with pytest.raises(ClusterError):
            log.append_record(skipped)

    def test_bump_epoch_stamps_later_records(self):
        log = ReplicationLog()
        before = log.append(REPL_WRITE, "a", 0, value="v")
        assert log.bump_epoch() == 1
        after = log.append(REPL_WRITE, "b", 1, value="w")
        assert before.epoch == 0
        assert after.epoch == 1
        assert after.seq == before.seq + 1   # seq never resets

    def test_records_from(self):
        log = ReplicationLog()
        for n in range(5):
            log.append(REPL_WRITE, n, n, value=n)
        assert [r.seq for r in log.records_from(3)] == [3, 4, 5]
        assert log.records_from(6) == []
        with pytest.raises(ValueError):
            log.records_from(0)


# ------------------------------------------------------------- LogApplier


class TestLogApplier:
    def test_applies_in_order_and_reads_back(self, replica):
        log = ReplicationLog()
        applier = LogApplier()
        log.append(REPL_WRITE, "a", 0, value=("v", 1))
        log.append(REPL_WRITE, "b", 1, value=("v", 2))
        for record in log.records_from(1):
            assert applier.apply(replica, record) is True
        assert replica.read(0) == ("v", 1)
        assert replica.read(1) == ("v", 2)
        assert applier.watermark == 2
        assert applier.applied == 2

    def test_reapply_is_idempotent_skip(self, replica):
        log = ReplicationLog()
        applier = LogApplier()
        record = log.append(REPL_WRITE, "a", 0, value="v")
        assert applier.apply(replica, record) is True
        assert applier.apply(replica, record) is False
        assert applier.applied == 1

    def test_gap_refused(self, replica):
        log = ReplicationLog()
        applier = LogApplier()
        log.append(REPL_WRITE, "a", 0, value="v")
        second = log.append(REPL_WRITE, "b", 1, value="w")
        with pytest.raises(ClusterError):
            applier.apply(replica, second)
        assert applier.watermark == 0    # nothing half-applied

    def test_stale_epoch_refused_after_promotion(self, replica):
        """A lagging replica must never replay a pre-failover record
        over post-failover state (the fencing the docs promise)."""
        log = ReplicationLog()
        applier = LogApplier()
        stale = log.append(REPL_WRITE, "a", 0, value="old")
        log.bump_epoch()
        fresh = ReplRecord(1, 1, REPL_WRITE, "a", 0, "new")
        assert applier.apply(replica, fresh) is True
        assert applier.epoch == 1
        with pytest.raises(StaleEpochError):
            applier.apply(replica, stale._replace(seq=2))

    def test_share_record_remaps(self, replica):
        log = ReplicationLog()
        applier = LogApplier()
        log.append(REPL_WRITE, "src", 0, value="payload")
        log.append(REPL_SHARE, "dst", 1, value="payload", src_lpn=0)
        for record in log.records_from(1):
            applier.apply(replica, record)
        assert replica.read(1) == "payload"

    def test_share_fallback_carries_payload(self, replica):
        """A SHARE record whose source LPN was never written on this
        device degrades to a plain write of the carried payload."""
        applier = LogApplier()
        record = ReplRecord(0, 1, REPL_SHARE, "dst", 1,
                            value="payload", src_lpn=7)
        assert applier.apply(replica, record) is True
        assert replica.read(1) == "payload"
        assert applier.share_fallbacks == 1

    def test_trim_record(self, replica):
        log = ReplicationLog()
        applier = LogApplier()
        log.append(REPL_WRITE, "a", 0, value="v")
        log.append(REPL_TRIM, "a", 0)
        for record in log.records_from(1):
            applier.apply(replica, record)
        with pytest.raises(UnmappedPageError):
            replica.read(0)

    def test_unknown_kind_refused(self, replica):
        applier = LogApplier()
        with pytest.raises(ClusterError):
            applier.apply(replica,
                          ReplRecord(0, 1, "compact", "a", 0))
