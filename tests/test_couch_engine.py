"""Integration tests for the couchstore engine: both commit modes, write
accounting, stale tracking, and reopen-after-crash."""

import pytest

from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd

from conftest import small_ssd_config


def make_store(clock, mode, leaf_capacity=4, fanout=8):
    ssd = Ssd(clock, small_ssd_config())
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    config = CouchConfig(leaf_capacity=leaf_capacity, internal_fanout=fanout,
                         prealloc_blocks=64)
    return ssd, fs, CouchStore(fs, "/db", mode, config)


class TestBasics:
    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_set_get_roundtrip(self, clock, mode):
        __, __, store = make_store(clock, mode)
        store.set("k", {"v": 1})
        assert store.get("k") == {"v": 1}  # read-your-write pre-commit
        store.commit()
        assert store.get("k") == {"v": 1}

    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_update_visible(self, clock, mode):
        __, __, store = make_store(clock, mode)
        store.set("k", "v1")
        store.commit()
        store.set("k", "v2")
        store.commit()
        assert store.get("k") == "v2"

    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_delete(self, clock, mode):
        __, __, store = make_store(clock, mode)
        store.set("k", "v")
        store.commit()
        assert store.delete("k")
        assert store.get("k") is None
        store.commit()
        assert store.get("k") is None
        assert not store.delete("k")

    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_delete_then_reinsert_in_batch(self, clock, mode):
        __, __, store = make_store(clock, mode)
        store.set("k", "v1")
        store.commit()
        store.delete("k")
        store.set("k", "v2")
        store.commit()
        assert store.get("k") == "v2"
        assert store.doc_count == 1

    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_double_update_in_batch(self, clock, mode):
        __, __, store = make_store(clock, mode)
        store.set("k", "v0")
        store.commit()
        store.set("k", "v1")
        store.set("k", "v2")
        store.commit()
        assert store.get("k") == "v2"

    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_items_sorted(self, clock, mode):
        __, __, store = make_store(clock, mode)
        for key in (5, 1, 3, 2, 4):
            store.set(key, ("v", key))
        store.commit()
        assert [k for k, __ in store.items()] == [1, 2, 3, 4, 5]
        assert store.doc_count == 5


class TestWriteAccounting:
    def test_original_updates_rewrite_tree(self, clock):
        __, __, store = make_store(clock, CommitMode.ORIGINAL)
        for key in range(64):
            store.set(key, key)
        store.commit()
        nodes_before = store.tree.nodes_written
        store.set(1, "update")
        store.commit()
        assert store.tree.nodes_written > nodes_before

    def test_share_updates_leave_tree_untouched(self, clock):
        ssd, __, store = make_store(clock, CommitMode.SHARE)
        for key in range(64):
            store.set(key, key)
        store.commit()
        nodes_before = store.tree.nodes_written
        headers_before = store.stats.headers_written
        store.set(1, "update")
        store.commit()
        assert store.tree.nodes_written == nodes_before
        assert store.stats.headers_written == headers_before
        assert ssd.stats.share_pairs == 1
        assert store.get(1) == "update"

    def test_share_inserts_still_write_tree(self, clock):
        __, __, store = make_store(clock, CommitMode.SHARE)
        store.set("a", 1)
        store.commit()
        nodes_before = store.tree.nodes_written
        store.set("b", 2)  # insert: tree must change
        store.commit()
        assert store.tree.nodes_written > nodes_before

    def test_share_mode_writes_fewer_pages(self, clock_pair=None):
        from repro.sim.clock import SimClock
        totals = {}
        for mode in CommitMode:
            clock = SimClock()
            ssd, __, store = make_store(clock, mode)
            for key in range(64):
                store.set(key, key)
            store.commit()
            ssd.reset_measurement()
            # batch size 1: the strongest wandering-tree amplification.
            for i in range(256):
                store.set(i % 64, ("u", i))
                store.commit()
            totals[mode] = ssd.stats.host_write_pages
        assert totals[CommitMode.SHARE] < totals[CommitMode.ORIGINAL] * 0.45

    def test_stale_ratio_grows_with_updates(self, clock):
        __, __, store = make_store(clock, CommitMode.ORIGINAL)
        for key in range(32):
            store.set(key, key)
        store.commit()
        ratio_after_load = store.stale_ratio
        for i in range(128):
            store.set(i % 32, ("u", i))
            if i % 4 == 3:
                store.commit()
        assert store.stale_ratio > ratio_after_load
        assert 0.0 < store.stale_ratio < 1.0

    def test_needs_compaction_threshold(self, clock):
        __, __, store = make_store(clock, CommitMode.ORIGINAL)
        for key in range(16):
            store.set(key, key)
        store.commit()
        while not store.needs_compaction():
            for key in range(16):
                store.set(key, ("churn", key))
            store.commit()
        assert store.stale_ratio >= store.config.compaction_stale_ratio


class TestReopen:
    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_committed_state_survives_power_cycle(self, clock, mode):
        ssd, fs, store = make_store(clock, mode)
        for key in range(40):
            store.set(key, ("v", key))
        store.commit()
        for key in range(0, 40, 2):
            store.set(key, ("v2", key))
        store.commit()
        ssd.power_cycle()
        reopened = CouchStore.reopen(fs, "/db", mode, store.config)
        for key in range(40):
            expected = ("v2", key) if key % 2 == 0 else ("v", key)
            assert reopened.get(key) == expected
        assert reopened.doc_count == 40

    @pytest.mark.parametrize("mode", list(CommitMode))
    def test_uncommitted_tail_discarded(self, clock, mode):
        ssd, fs, store = make_store(clock, mode)
        store.set("a", "committed")
        store.commit()
        store.set("b", "uncommitted-insert")
        # no commit; crash
        ssd.power_cycle()
        reopened = CouchStore.reopen(fs, "/db", mode, store.config)
        assert reopened.get("a") == "committed"
        assert reopened.get("b") is None

    def test_share_mode_update_durable_without_header(self, clock):
        """A SHARE-mode pure-update commit writes no header, yet is
        durable: the device's atomic remap IS the commit record."""
        ssd, fs, store = make_store(clock, CommitMode.SHARE)
        store.set("a", "v1")
        store.commit()
        headers = store.stats.headers_written
        store.set("a", "v2")
        store.commit()
        assert store.stats.headers_written == headers
        ssd.power_cycle()
        reopened = CouchStore.reopen(fs, "/db", CommitMode.SHARE,
                                     store.config)
        assert reopened.get("a") == "v2"

    def test_reopen_never_committed_file(self, clock):
        ssd, fs, store = make_store(clock, CommitMode.ORIGINAL)
        store.set("a", 1)  # appended but never committed
        ssd.power_cycle()
        reopened = CouchStore.reopen(fs, "/db", CommitMode.ORIGINAL)
        assert reopened.get("a") is None
        assert reopened.doc_count == 0


class TestConfigValidation:
    def test_bad_doc_blocks(self):
        with pytest.raises(ValueError):
            CouchConfig(doc_blocks=0)

    def test_bad_stale_ratio(self):
        with pytest.raises(ValueError):
            CouchConfig(compaction_stale_ratio=1.5)

    def test_bad_prealloc(self):
        with pytest.raises(ValueError):
            CouchConfig(prealloc_blocks=0)
