"""Unit tests for the SSD block-device facade: commands, stats, latency
charging, tracing, aging, and power cycling."""

import pytest

from repro.errors import ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.ftl.share_ext import SharePair
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

from conftest import small_ssd_config


class TestCommands:
    def test_write_read(self, ssd):
        ssd.write(3, "abc")
        assert ssd.read(3) == "abc"
        assert ssd.stats.host_write_pages == 1
        assert ssd.stats.host_read_pages == 1

    def test_write_multi(self, ssd):
        ssd.write_multi(10, ["a", "b", "c"])
        assert [ssd.read(10 + i) for i in range(3)] == ["a", "b", "c"]
        assert ssd.stats.host_write_pages == 3

    def test_write_multi_empty_rejected(self, ssd):
        from repro.errors import DeviceError
        with pytest.raises(DeviceError):
            ssd.write_multi(0, [])

    def test_share_and_stats(self, ssd):
        ssd.write(1, "x")
        ssd.share(2, 1)
        ssd.share_batch([SharePair(3, 1)])
        assert ssd.read(2) == "x"
        assert ssd.read(3) == "x"
        assert ssd.stats.share_commands == 2
        assert ssd.stats.share_pairs == 2

    def test_share_disabled_device_rejects(self, clock):
        config = SsdConfig(geometry=FlashGeometry.small(),
                           timing=FAST_TIMING, share_enabled=False)
        plain = Ssd(clock, config)
        plain.write(1, "x")
        with pytest.raises(ShareError):
            plain.share(2, 1)
        with pytest.raises(ShareError):
            plain.share_batch([SharePair(2, 1)])

    def test_trim_and_flush(self, ssd):
        ssd.write(1, "x")
        ssd.trim(1)
        ssd.flush()
        assert ssd.stats.trim_commands == 1
        assert ssd.stats.flush_commands == 1


class TestLatency:
    def test_time_advances_per_command(self, clock, ssd):
        before = clock.now_us
        ssd.write(0, "x")
        after_write = clock.now_us
        assert after_write > before
        ssd.read(0)
        assert clock.now_us > after_write

    def test_writes_cost_more_than_reads(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        ssd.write(0, "x")
        start = clock.now_us
        ssd.write(1, "y")
        write_cost = clock.now_us - start
        start = clock.now_us
        ssd.read(0)
        read_cost = clock.now_us - start
        assert write_cost > read_cost

    def test_share_is_cheaper_than_write(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        ssd.write(0, "x")
        start = clock.now_us
        ssd.write(1, "y")
        write_cost = clock.now_us - start
        start = clock.now_us
        ssd.share(2, 0)
        share_cost = clock.now_us - start
        assert share_cost < write_cost

    def test_gc_work_charged_to_triggering_command(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        hot = ssd.logical_pages // 4
        max_latency = 0
        for i in range(ssd.logical_pages * 3):
            start = clock.now_us
            ssd.write(i % hot, i)
            max_latency = max(max_latency, clock.now_us - start)
        assert ssd.stats.gc_events > 0
        # Some command absorbed GC latency: max >> a clean write.
        clean = FAST_TIMING.program_latency(ssd.page_size) + FAST_TIMING.command_overhead_us
        assert max_latency > clean * 2


class TestStats:
    def test_waf_grows_with_gc(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        # Mixed-temperature workload so GC moves valid pages.
        import random
        rng = random.Random(1)
        span = int(ssd.logical_pages * 0.9)
        for lpn in range(span):
            ssd.write(lpn, lpn)
        for i in range(ssd.logical_pages * 2):
            ssd.write(rng.randrange(span), i)
        assert ssd.stats.copyback_pages > 0
        assert ssd.stats.write_amplification > 1.0

    def test_delta_since(self, ssd):
        ssd.write(0, "x")
        before = ssd.stats.copy()
        ssd.write(1, "y")
        delta = ssd.stats.delta_since(before)
        assert delta["host_write_pages"] == 1

    def test_host_written_bytes(self, ssd):
        ssd.write(0, "x")
        assert ssd.stats.host_written_bytes == ssd.page_size


class TestTrace:
    def test_trace_disabled_by_default(self, ssd):
        ssd.write(0, "x")
        assert len(ssd.trace) == 0

    def test_trace_records_commands(self, clock):
        ssd = Ssd(clock, small_ssd_config(trace=100))
        ssd.write(0, "x")
        ssd.read(0)
        kinds = [event.kind for event in ssd.trace]
        assert kinds == ["write", "read"]
        assert ssd.trace.events("write")[0].latency_us > 0

    def test_trace_capacity_bounds(self, clock):
        ssd = Ssd(clock, small_ssd_config(trace=2))
        for i in range(5):
            ssd.write(i, i)
        assert len(ssd.trace) == 2
        assert ssd.trace.dropped == 3


class TestPowerCycle:
    def test_data_survives_power_cycle(self, ssd):
        ssd.write(1, "persist")
        ssd.share(2, 1)
        ssd.power_cycle()
        assert ssd.read(1) == "persist"
        assert ssd.read(2) == "persist"

    def test_stats_survive_power_cycle_object(self, ssd):
        ssd.write(1, "x")
        writes_before = ssd.stats.host_write_pages
        ssd.power_cycle()
        assert ssd.stats.host_write_pages == writes_before


class TestAging:
    def test_age_fills_and_excludes_stats(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        ssd.age(fill_fraction=0.5, rewrite_fraction=0.5)
        assert ssd.stats.host_write_pages == 0
        assert clock.now_us == 0
        # Media really is filled.
        assert ssd.read(0) is not None

    def test_age_validates_args(self, ssd):
        with pytest.raises(ValueError):
            ssd.age(fill_fraction=1.5, rewrite_fraction=0.0)
        with pytest.raises(ValueError):
            ssd.age(fill_fraction=0.5, rewrite_fraction=-0.1)

    def test_reset_measurement_clears_counters(self, ssd):
        ssd.write(0, "x")
        ssd.reset_measurement()
        assert ssd.stats.host_write_pages == 0
        assert ssd.ftl.stats.host_page_writes == 0
