"""Tests for breaker-driven failover: kill -> deferred promotion ->
tail replay -> epoch fencing -> role swap -> rejoin re-replication,
plus the GuardStats open-episode accounting the promotion closes out."""

import pytest

from repro.cluster import FailoverController, ShardPair, ShardRouter
from repro.errors import ShardUnavailableError
from repro.host.resilience import BREAKER_CLOSED, BREAKER_OPEN
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.ssd.device import Ssd

from conftest import small_ssd_config

from test_cluster_router import make_cluster


def loaded_router(clock, keys=30, pump=True):
    router, pairs = make_cluster(clock)
    for n in range(keys):
        router.put(("node", n), ("v", n))
    if pump:
        router.pump_replication()
    return router, pairs


class TestKillAndPromote:
    def test_kill_marks_pair_and_defers_promotion(self, clock):
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        router.kill_shard(pair.name)
        assert pair.primary_down
        assert pair.needs_promotion    # breaker listener fired
        assert pair.guard.breaker.state == BREAKER_OPEN
        assert router.stats.failovers == 0    # not yet — op boundary

    def test_next_op_promotes_and_serves(self, clock):
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        old_primary, old_replica = pair.primary, pair.replica
        router.kill_shard(pair.name)
        assert router.get(("node", 0)) == ("v", 0)
        assert router.stats.failovers == 1
        assert pair.primary is old_replica
        assert pair.replica is old_primary
        assert pair.guard.breaker.state == BREAKER_CLOSED

    def test_no_lost_acked_writes_with_lag(self, clock):
        """Writes acked after the last pump live only on the primary and
        in the log; promotion must replay them onto the new primary."""
        router, __ = loaded_router(clock, keys=20, pump=True)
        for n in range(20, 30):                 # unpumped tail
            router.put(("node", n), ("v", n))
        pair = router.pair_for(("node", 0))
        lag_before = pair.repl_lag
        router.kill_shard(pair.name)
        router.ensure_healthy()
        event = router.controller.events[-1]
        assert event.replayed == lag_before
        for n in range(30):
            assert router.get(("node", n)) == ("v", n)

    def test_promotion_bumps_epoch(self, clock):
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        router.kill_shard(pair.name)
        assert router.ensure_healthy() == 1
        assert pair.log.epoch == 1
        event = router.controller.events[-1]
        assert event.epoch == 1
        assert event.shard == pair.name
        assert event.old_primary != event.new_primary
        assert router.stats.failover_duration_us == event.duration_us

    def test_rejoin_rereplicates_full_log(self, clock):
        """The demoted device gets a fresh applier; pumping replays the
        whole log from seq 1 onto it (idempotent on its media)."""
        router, __ = loaded_router(clock, keys=25)
        pair = router.pair_for(("node", 0))
        log_tip = pair.log.tip
        router.kill_shard(pair.name)
        router.ensure_healthy()
        assert pair.applier.watermark == 0
        applied = router.pump_replication()
        assert applied == log_tip == pair.applier.watermark
        assert pair.repl_lag == 0

    def test_writes_continue_through_failover(self, clock):
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        router.kill_shard(pair.name)
        record = router.put(("node", 0), ("v2", 0))
        assert record.epoch == 1    # post-fencing regime
        assert router.get(("node", 0)) == ("v2", 0)

    def test_second_kill_promotes_back(self, clock):
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        original_primary = pair.primary
        router.kill_shard(pair.name)
        router.ensure_healthy()
        router.pump_replication()    # rejoin before the second kill
        router.kill_shard(pair.name)
        router.ensure_healthy()
        assert pair.primary is original_primary
        assert pair.log.epoch == 2
        for n in range(30):
            assert router.get(("node", n)) == ("v", n)

    def test_guard_stats_record_open_episode(self, clock):
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        router.kill_shard(pair.name)
        stats = pair.guard.stats
        assert stats.last_open_us == clock.now_us
        opened_at = stats.last_open_us
        clock.advance(500)
        router.ensure_healthy()    # reset closes the episode
        assert stats.open_duration_us >= clock.now_us - opened_at


class TestFailoverController:
    def test_promote_without_replica_refused(self, clock):
        events = EventScheduler(clock)
        primary = Ssd(clock, small_ssd_config(), name="p", events=events)
        replica = Ssd(clock, small_ssd_config(), name="r", events=events)
        pair = ShardPair("solo", primary, replica)
        pair.replica = None
        controller = FailoverController(clock)
        with pytest.raises(ShardUnavailableError):
            controller.promote(pair)

    def test_on_promoted_callback_fires(self, clock):
        seen = []
        router, __ = loaded_router(clock)
        pair = router.pair_for(("node", 0))
        router.kill_shard(pair.name)
        controller = FailoverController(clock, on_promoted=seen.append)
        controller.promote(pair)
        assert len(seen) == 1
        assert seen[0].shard == pair.name
