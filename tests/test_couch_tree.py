"""Unit tests for the append-only (wandering) B+tree."""

import random

import pytest

from repro.couchstore.tree import AppendTree, _balanced_chunks
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def tree(clock):
    ssd = Ssd(clock, small_ssd_config())
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    file = fs.create("/t")
    return AppendTree(file, leaf_capacity=4, internal_fanout=4)


class TestBalancedChunks:
    def test_empty(self):
        assert _balanced_chunks([], 4) == []

    def test_exact_fit(self):
        assert _balanced_chunks([1, 2, 3, 4], 4) == [[1, 2, 3, 4]]

    def test_balances(self):
        chunks = _balanced_chunks(list(range(5)), 4)
        assert [len(c) for c in chunks] == [3, 2]

    def test_never_exceeds_capacity(self):
        for n in range(1, 40):
            for cap in (2, 3, 5, 7):
                chunks = _balanced_chunks(list(range(n)), cap)
                assert all(1 <= len(c) <= cap for c in chunks)
                assert sum(chunks, []) == list(range(n))


class TestBasics:
    def test_empty_tree(self, tree):
        assert tree.root_block is None
        assert tree.get(1) is None
        assert list(tree.items()) == []
        assert tree.depth() == 0

    def test_first_batch_builds_root(self, tree):
        tree.apply_batch({1: "a", 2: "b"})
        assert tree.get(1) == "a"
        assert tree.get(2) == "b"
        assert tree.depth() == 1

    def test_updates_are_copy_on_write(self, tree):
        tree.apply_batch({1: "v1"})
        root_before = tree.root_block
        tree.apply_batch({1: "v2"})
        assert tree.root_block != root_before
        assert tree.get(1) == "v2"

    def test_unchanged_subtrees_are_reused(self, tree):
        tree.apply_batch({k: k for k in range(64)})
        nodes_before = tree.nodes_written
        tree.apply_batch({0: "new"})
        # Only one root-to-leaf path rewritten, not the whole tree.
        assert tree.nodes_written - nodes_before <= tree.depth() + 1

    def test_batch_dedups_paths(self, tree):
        tree.apply_batch({k: k for k in range(64)})
        nodes_before = tree.nodes_written
        # Two keys in the same leaf: the path is written once.
        tree.apply_batch({0: "x", 1: "y"})
        per_pair = tree.nodes_written - nodes_before
        nodes_before = tree.nodes_written
        tree.apply_batch({0: "x2"})
        per_single = tree.nodes_written - nodes_before
        assert per_pair == per_single

    def test_deletes(self, tree):
        tree.apply_batch({k: k for k in range(20)})
        tree.apply_batch({5: None, 6: None})
        assert tree.get(5) is None
        assert tree.get(7) == 7
        assert len(list(tree.items())) == 18

    def test_delete_everything(self, tree):
        tree.apply_batch({k: k for k in range(10)})
        tree.apply_batch({k: None for k in range(10)})
        assert list(tree.items()) == []
        tree.apply_batch({3: "back"})
        assert tree.get(3) == "back"

    def test_empty_batch_is_noop(self, tree):
        assert tree.apply_batch({}) == 0

    def test_items_in_key_order(self, tree):
        keys = list(range(100))
        random.Random(3).shuffle(keys)
        for chunk_start in range(0, 100, 10):
            tree.apply_batch({k: ("v", k)
                              for k in keys[chunk_start:chunk_start + 10]})
        assert [k for k, __ in tree.items()] == list(range(100))

    def test_depth_grows(self, tree):
        tree.apply_batch({k: k for k in range(200)})
        assert tree.depth() >= 3

    def test_bulk_load(self, tree):
        items = [(k, ("v", k)) for k in range(100)]
        nodes = tree.bulk_load(items)
        assert nodes > 0
        assert [k for k, __ in tree.items()] == list(range(100))
        assert tree.get(50) == ("v", 50)

    def test_bulk_load_empty(self, tree):
        tree.bulk_load([])
        assert list(tree.items()) == []


class TestAmplification:
    def test_wandering_writes_full_path(self, tree):
        """The signature cost of Section 2.2: one key update rewrites
        depth-many nodes."""
        tree.apply_batch({k: k for k in range(256)})
        depth = tree.depth()
        assert depth >= 3
        nodes_before = tree.nodes_written
        tree.apply_batch({128: "update"})
        assert tree.nodes_written - nodes_before == depth

    def test_obsoleted_counts_replaced_nodes(self, tree):
        tree.apply_batch({k: k for k in range(64)})
        obsoleted_before = tree.nodes_obsoleted
        tree.apply_batch({0: "x"})
        assert tree.nodes_obsoleted > obsoleted_before


class TestValidation:
    def test_bad_capacity(self, tree):
        with pytest.raises(ValueError):
            AppendTree(tree.file, leaf_capacity=1)
        with pytest.raises(ValueError):
            AppendTree(tree.file, internal_fanout=2)


class TestModelEquivalence:
    def test_random_batches_match_dict(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        tree = AppendTree(fs.create("/m"), leaf_capacity=3, internal_fanout=4)
        rng = random.Random(7)
        model = {}
        for __ in range(60):
            batch = {}
            for __ in range(rng.randrange(1, 12)):
                key = rng.randrange(120)
                if rng.random() < 0.25:
                    batch[key] = None
                else:
                    batch[key] = ("v", key, rng.random())
            tree.apply_batch(batch)
            for key, value in batch.items():
                if value is None:
                    model.pop(key, None)
                else:
                    model[key] = value
            assert sorted(model.items()) == list(tree.items())
