"""Unit tests for the zipfian generators."""

import pytest

from repro.sim.rng import ScrambledZipfian, ZipfianGenerator, make_rng


def test_make_rng_deterministic():
    assert make_rng(7).random() == make_rng(7).random()
    assert make_rng(7).random() != make_rng(8).random()


def test_zipfian_in_range():
    gen = ZipfianGenerator(1000, seed=3)
    draws = [gen.next() for _ in range(5000)]
    assert all(0 <= d < 1000 for d in draws)


def test_zipfian_is_skewed():
    gen = ZipfianGenerator(1000, seed=3)
    draws = [gen.next() for _ in range(20000)]
    head = sum(1 for d in draws if d < 10)
    # Zipf(0.99): the hottest 1% of items should receive far more than 1%
    # of the draws.
    assert head / len(draws) > 0.15


def test_zipfian_deterministic():
    a = ZipfianGenerator(500, seed=11)
    b = ZipfianGenerator(500, seed=11)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_zipfian_rejects_bad_args():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.0)


def test_scrambled_spreads_hot_keys():
    gen = ScrambledZipfian(1000, seed=5)
    draws = [gen.next() for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    # The two hottest scrambled keys should not be adjacent raw indices.
    from collections import Counter
    top = [k for k, _ in Counter(draws).most_common(2)]
    assert abs(top[0] - top[1]) > 1


def test_scrambled_still_skewed():
    gen = ScrambledZipfian(1000, seed=5)
    from collections import Counter
    counts = Counter(gen.next() for _ in range(20000))
    hottest = counts.most_common(1)[0][1]
    assert hottest > 20000 * 0.02
