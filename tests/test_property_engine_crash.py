"""Property-based crash testing at the ENGINE level: power may fail at a
random device-layer point during a random couchstore workload.

The contract checked is the engine's real one (Section 4.3): each
*document* operation is atomic, and a commit() that returned is fully
durable.  A commit interrupted by the crash may surface partially at
batch granularity — in SHARE mode updates publish through the device
remap while inserts/deletes publish through the header — but every key
must read as either its last-durable or its in-flight version, never a
torn mix, and the store must remain fully usable."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.errors import PowerFailure
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.ssd.device import Ssd, SsdConfig

KEYS = st.integers(0, 30)
VALUES = st.integers(0, 1000)
FAULT_POINTS = (
    "ftl.before_program",
    "ftl.after_program",
    "maplog.before_commit",
    "maplog.after_commit",
)

batch_strategy = st.lists(
    st.one_of(st.tuples(st.just("set"), KEYS, VALUES),
              st.tuples(st.just("delete"), KEYS, st.just(0))),
    min_size=1, max_size=6)


def _check_per_key_contract(recovered, durable, inflight, point, nth, mode):
    """Per-key atomicity + durability of returned commits.

    Every key must read as its last-durable version or (only while a
    commit was interrupted) its in-flight version — nothing else, nothing
    torn, no phantom keys.
    """
    every_key = set(durable) | set(recovered)
    if inflight is not None:
        every_key |= set(inflight)
    for key in every_key:
        allowed = {repr(durable.get(key))}
        if inflight is not None:
            allowed.add(repr(inflight.get(key)))
        assert repr(recovered.get(key)) in allowed, (
            f"key {key} reads {recovered.get(key)!r}, expected one of "
            f"{allowed} (crash at {point} #{nth}, mode {mode.value})")


def fresh(mode, faults):
    clock = SimClock()
    geo = FlashGeometry(page_size=4096, pages_per_block=32, block_count=96,
                        overprovision_ratio=0.15)
    ssd = Ssd(clock, SsdConfig(geometry=geo, timing=FAST_TIMING,
                               ftl=FtlConfig(map_block_count=6)),
              faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    store = CouchStore(fs, "/db", mode,
                       CouchConfig(leaf_capacity=3, internal_fanout=4,
                                   prealloc_blocks=32))
    return ssd, fs, store


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=1, max_size=10),
       st.sampled_from(list(CommitMode)),
       st.sampled_from(FAULT_POINTS),
       st.integers(1, 40))
def test_couch_crash_exposes_a_committed_prefix(batches, mode, point, nth):
    faults = FaultPlan()
    ssd, fs, store = fresh(mode, faults)
    # States the recovered store may legitimately expose: the state after
    # each completed commit, plus — when the crash interrupts a commit —
    # the in-flight batch's state (its single-page header program is the
    # atomic point, so the whole batch appears or none of it does).
    durable = {}          # state after the last commit that RETURNED
    inflight = None       # state of the batch whose commit crashed
    model = {}
    faults.arm(PowerFailAfter(point, nth=nth))
    try:
        for batch in batches:
            for kind, key, value in batch:
                if kind == "set":
                    store.set(key, ("v", key, value))
                    model[key] = ("v", key, value)
                else:
                    store.delete(key)
                    model.pop(key, None)
            inflight = dict(model)
            store.commit()
            durable = dict(model)
            inflight = None
    except PowerFailure:
        pass
    faults.disarm()   # the fuse must not fire during recovery checks
    ssd.power_cycle()
    reopened = CouchStore.reopen(fs, "/db", mode, store.config)
    recovered = {key: value for key, value in reopened.items()}
    _check_per_key_contract(recovered, durable, inflight, point, nth, mode)
    # The store must be fully usable after recovery.
    reopened.set(999, "post-crash")
    reopened.commit()
    assert reopened.get(999) == "post-crash"
    ssd.ftl.check_invariants()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=1, max_size=6),
       st.sampled_from(FAULT_POINTS),
       st.integers(1, 30))
def test_share_mode_committed_batches_are_durable(batches, point, nth):
    """Stronger property for SHARE mode: every batch whose commit()
    RETURNED before the crash must be present after reopen (commits are
    device-durable, not just buffered)."""
    faults = FaultPlan()
    ssd, fs, store = fresh(CommitMode.SHARE, faults)
    model = {}
    durable = {}
    inflight = None
    faults.arm(PowerFailAfter(point, nth=nth))
    try:
        for batch in batches:
            for kind, key, value in batch:
                if kind == "set":
                    store.set(key, ("v", key, value))
                    model[key] = ("v", key, value)
                else:
                    store.delete(key)
                    model.pop(key, None)
            inflight = dict(model)
            store.commit()
            durable = dict(model)
            inflight = None
    except PowerFailure:
        pass
    faults.disarm()   # the fuse must not fire during recovery checks
    ssd.power_cycle()
    reopened = CouchStore.reopen(fs, "/db", CommitMode.SHARE, store.config)
    recovered = {key: value for key, value in reopened.items()}
    _check_per_key_contract(recovered, durable, inflight, point, nth,
                            CommitMode.SHARE)
