"""Header snapshots, and the semantic difference SHARE introduces.

Couchstore's append-only design gives free point-in-time snapshots: an
old header's tree keeps working because nothing is overwritten.  The
SHARE adaptation changes the physics — updating a document remaps the
*old block* onto the new content — so a pinned snapshot's tree now reads
the NEW document bodies.  Key-set changes (inserts/deletes) remain
invisible because those do go through the tree.

These tests document the exact contract in both modes: a reproduction
finding the paper does not discuss.
"""

import pytest

from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def make_store(clock):
    def build(mode):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        store = CouchStore(fs, "/db", mode,
                           CouchConfig(leaf_capacity=4, internal_fanout=8,
                                       prealloc_blocks=64))
        for key in range(10):
            store.set(key, ("v1", key))
        store.commit()
        return store
    return build


class TestOriginalModeSnapshots:
    def test_snapshot_is_point_in_time(self, make_store):
        store = make_store(CommitMode.ORIGINAL)
        snap = store.snapshot()
        store.set(3, ("v2", 3))
        store.commit()
        # The live store moved on; the snapshot did not.
        assert store.get(3) == ("v2", 3)
        assert snap.get(3) == ("v1", 3)

    def test_snapshot_hides_later_inserts_and_deletes(self, make_store):
        store = make_store(CommitMode.ORIGINAL)
        snap = store.snapshot()
        store.set(100, "new-doc")
        store.delete(5)
        store.commit()
        assert snap.get(100) is None
        assert snap.get(5) == ("v1", 5)
        assert store.get(100) == "new-doc"
        assert store.get(5) is None

    def test_snapshot_full_iteration(self, make_store):
        store = make_store(CommitMode.ORIGINAL)
        snap = store.snapshot()
        for round_two in range(10):
            store.set(round_two, ("v2", round_two))
        store.commit()
        assert dict(snap.items()) == {k: ("v1", k) for k in range(10)}


class TestShareModeSnapshots:
    def test_key_set_is_still_pinned(self, make_store):
        store = make_store(CommitMode.SHARE)
        snap = store.snapshot()
        store.set(100, "new-doc")   # insert: goes through the tree
        store.delete(5)             # delete: goes through the tree
        store.commit()
        assert snap.get(100) is None
        assert snap.contains(5)

    def test_update_contents_leak_through(self, make_store):
        """THE FINDING: in SHARE mode a snapshot reads updated document
        CONTENT, because the update remapped the very block the pinned
        tree points at.  Point-in-time readers need either ORIGINAL mode
        or an engine that withholds the remap while snapshots exist."""
        store = make_store(CommitMode.SHARE)
        snap = store.snapshot()
        store.set(3, ("v2", 3))
        store.commit()
        assert store.get(3) == ("v2", 3)
        # The snapshot does NOT see ("v1", 3) — the remap rewrote history
        # underneath its tree.
        assert snap.get(3) == ("v2", 3)

    def test_snapshot_never_sees_uncommitted(self, make_store):
        store = make_store(CommitMode.SHARE)
        snap = store.snapshot()
        store.set(3, ("pending", 3))      # appended, not yet shared
        assert snap.get(3) == ("v1", 3)   # remap happens at commit
        store.commit()
        assert snap.get(3) == ("pending", 3)


class TestPinnedSnapshots:
    """The fix: pin=True withholds remapping while the snapshot lives,
    restoring exact point-in-time semantics in SHARE mode."""

    def test_pinned_snapshot_is_point_in_time(self, make_store):
        store = make_store(CommitMode.SHARE)
        snap = store.snapshot(pin=True)
        store.set(3, ("v2", 3))
        store.commit()
        assert store.get(3) == ("v2", 3)
        assert snap.get(3) == ("v1", 3)   # history preserved
        snap.release()

    def test_updates_under_pin_go_through_tree(self, make_store):
        store = make_store(CommitMode.SHARE)
        ssd = store.fs.ssd
        snap = store.snapshot(pin=True)
        pairs_before = ssd.stats.share_pairs
        store.set(3, ("v2", 3))
        store.commit()
        assert ssd.stats.share_pairs == pairs_before  # no remap happened
        snap.release()

    def test_remapping_resumes_after_release(self, make_store):
        store = make_store(CommitMode.SHARE)
        ssd = store.fs.ssd
        with store.snapshot(pin=True):
            store.set(3, ("v2", 3))
            store.commit()
        pairs_before = ssd.stats.share_pairs
        store.set(3, ("v3", 3))
        store.commit()
        assert ssd.stats.share_pairs > pairs_before
        assert store.get(3) == ("v3", 3)

    def test_nested_pins_counted(self, make_store):
        store = make_store(CommitMode.SHARE)
        ssd = store.fs.ssd
        a = store.snapshot(pin=True)
        b = store.snapshot(pin=True)
        a.release()
        pairs_before = ssd.stats.share_pairs
        store.set(3, ("v2", 3))
        store.commit()
        assert ssd.stats.share_pairs == pairs_before  # b still pins
        b.release()

    def test_double_release_is_safe(self, make_store):
        store = make_store(CommitMode.SHARE)
        snap = store.snapshot(pin=True)
        snap.release()
        snap.release()  # no-op
        assert store._live_snapshots == 0

    def test_unpinned_snapshot_does_not_block_remaps(self, make_store):
        store = make_store(CommitMode.SHARE)
        ssd = store.fs.ssd
        store.snapshot()  # unpinned
        pairs_before = ssd.stats.share_pairs
        store.set(3, ("v2", 3))
        store.commit()
        assert ssd.stats.share_pairs > pairs_before
