"""Unit tests for the SHARE-based atomic-write primitive and the batch
builder."""

import pytest

from repro.errors import PowerFailure, ShareError
from repro.core.atomic_write import AtomicWriter, ScratchArea
from repro.core.share import ShareBatchBuilder
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def stack(clock):
    ssd = Ssd(clock, small_ssd_config())
    scratch = ScratchArea(ssd, base_lpn=1500, size_pages=32)
    return ssd, scratch


class TestScratchArea:
    def test_stage_round_robin(self, stack):
        ssd, scratch = stack
        first = scratch.stage("a")
        second = scratch.stage("b")
        assert second == first + 1
        assert ssd.read(first) == "a"

    def test_wraps(self, stack):
        ssd, scratch = stack
        lpns = [scratch.stage(i) for i in range(scratch.size_pages + 2)]
        assert lpns[0] == lpns[scratch.size_pages]

    def test_stage_batch_contiguous(self, stack):
        ssd, scratch = stack
        lpns = scratch.stage_batch(["a", "b", "c"])
        assert lpns == [scratch.base_lpn, scratch.base_lpn + 1,
                        scratch.base_lpn + 2]

    def test_stage_batch_across_wrap(self, stack):
        ssd, scratch = stack
        for _ in range(scratch.size_pages - 1):
            scratch.stage("pad")
        lpns = scratch.stage_batch(["x", "y"])
        assert len(lpns) == 2
        assert ssd.read(lpns[0]) == "x"
        assert ssd.read(lpns[1]) == "y"

    def test_oversized_batch_rejected(self, stack):
        __, scratch = stack
        with pytest.raises(ShareError):
            scratch.stage_batch(["x"] * (scratch.size_pages + 1))

    def test_bad_geometry_rejected(self, stack):
        ssd, __ = stack
        with pytest.raises(ValueError):
            ScratchArea(ssd, base_lpn=ssd.logical_pages - 1, size_pages=8)
        with pytest.raises(ValueError):
            ScratchArea(ssd, base_lpn=0, size_pages=0)


class TestAtomicWriter:
    def test_commit_applies_all(self, stack):
        ssd, scratch = stack
        writer = AtomicWriter(ssd, scratch)
        writer.stage(10, "ten")
        writer.stage(11, "eleven")
        assert writer.commit() == 2
        assert ssd.read(10) == "ten"
        assert ssd.read(11) == "eleven"
        assert writer.staged_count == 0

    def test_restage_supersedes(self, stack):
        ssd, scratch = stack
        writer = AtomicWriter(ssd, scratch)
        writer.stage(10, "v1")
        writer.stage(10, "v2")
        writer.commit()
        assert ssd.read(10) == "v2"

    def test_abort_leaves_old_content(self, stack):
        ssd, scratch = stack
        ssd.write(10, "old")
        writer = AtomicWriter(ssd, scratch)
        writer.stage(10, "new")
        writer.abort()
        assert ssd.read(10) == "old"
        with pytest.raises(ShareError):
            writer.commit()

    def test_destination_inside_scratch_rejected(self, stack):
        ssd, scratch = stack
        writer = AtomicWriter(ssd, scratch)
        with pytest.raises(ShareError):
            writer.stage(scratch.base_lpn, "x")

    def test_crash_before_commit_keeps_all_old(self, clock):
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        scratch = ScratchArea(ssd, base_lpn=1500, size_pages=32)
        writer = AtomicWriter(ssd, scratch)
        for lpn in (10, 11, 12):
            ssd.write(lpn, ("old", lpn))
        for lpn in (10, 11, 12):
            writer.stage(lpn, ("new", lpn))
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            writer.commit()
        ssd.power_cycle()
        for lpn in (10, 11, 12):
            assert ssd.read(lpn) == ("old", lpn)

    def test_crash_after_commit_keeps_all_new(self, clock):
        faults = FaultPlan()
        ssd = Ssd(clock, small_ssd_config(), faults=faults)
        scratch = ScratchArea(ssd, base_lpn=1500, size_pages=32)
        writer = AtomicWriter(ssd, scratch)
        for lpn in (10, 11, 12):
            ssd.write(lpn, ("old", lpn))
        for lpn in (10, 11, 12):
            writer.stage(lpn, ("new", lpn))
        faults.arm(PowerFailAfter("maplog.after_commit"))
        with pytest.raises(PowerFailure):
            writer.commit()
        ssd.power_cycle()
        for lpn in (10, 11, 12):
            assert ssd.read(lpn) == ("new", lpn)


class TestShareBatchBuilder:
    def test_submit_chunks(self, stack):
        ssd, __ = stack
        builder = ShareBatchBuilder(ssd)
        for i in range(10):
            ssd.write(i, ("src", i))
        for i in range(10):
            builder.add(100 + i, i)
        assert len(builder) == 10
        commands = builder.submit()
        assert commands == 1
        for i in range(10):
            assert ssd.read(100 + i) == ("src", i)

    def test_large_batch_splits(self, stack):
        ssd, __ = stack
        builder = ShareBatchBuilder(ssd)
        count = ssd.max_share_batch + 5
        for i in range(count):
            ssd.write(i % 50, ("src", i))
        for i in range(count):
            builder.add(500 + i, i % 50)
        assert builder.submit() == 2

    def test_duplicate_destination_rejected_eagerly(self, stack):
        ssd, __ = stack
        builder = ShareBatchBuilder(ssd)
        builder.add(100, 0)
        with pytest.raises(ShareError):
            builder.add(100, 1)

    def test_empty_submit_rejected(self, stack):
        ssd, __ = stack
        with pytest.raises(ShareError):
            ShareBatchBuilder(ssd).submit()

    def test_add_range(self, stack):
        ssd, __ = stack
        for i in range(3):
            ssd.write(i, ("r", i))
        builder = ShareBatchBuilder(ssd)
        builder.add_range(200, 0, 3)
        builder.submit()
        for i in range(3):
            assert ssd.read(200 + i) == ("r", i)
