"""Telemetry cost tiers (REPRO_OBS): the deterministic sampler, mode
resolution, the off/sampled/full Telemetry wiring, root-span trace
sampling, and the sampled device hot path."""

import pytest

from repro.obs import (DEFAULT_SAMPLE_EVERY, MemorySink, NEVER_SAMPLER,
                       NULL_TELEMETRY, OBS_MODES, Sampler, Telemetry,
                       obs_mode, obs_sample_every)
from repro.obs.registry import NULL_REGISTRY
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


class TestSampler:
    def test_first_event_always_hits(self):
        assert Sampler(10).hit() is True

    def test_one_in_n_deterministic(self):
        sampler = Sampler(4)
        hits = [sampler.hit() for __ in range(12)]
        assert hits == [True, False, False, False] * 3

    def test_every_one_always_hits(self):
        sampler = Sampler(1)
        assert all(sampler.hit() for __ in range(10))

    def test_reset_rearms_first_hit(self):
        sampler = Sampler(3)
        sampler.hit()
        sampler.hit()
        sampler.reset()
        assert sampler.hit() is True

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            Sampler(0)

    def test_never_sampler(self):
        assert NEVER_SAMPLER.every == 0
        assert not any(NEVER_SAMPLER.hit() for __ in range(5))
        NEVER_SAMPLER.reset()  # no-op


class TestModeResolution:
    def test_default_is_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert obs_mode() == "full"

    def test_env_selects_mode(self, monkeypatch):
        for mode in OBS_MODES:
            monkeypatch.setenv("REPRO_OBS", f"  {mode.upper()} ")
            assert obs_mode() == mode

    def test_bad_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "verbose")
        with pytest.raises(ValueError, match="REPRO_OBS"):
            obs_mode()

    def test_sample_every_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_SAMPLE", raising=False)
        assert obs_sample_every() == DEFAULT_SAMPLE_EVERY
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "16")
        assert obs_sample_every() == 16
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "0")
        with pytest.raises(ValueError):
            obs_sample_every()

    def test_sample_every_malformed_value_names_the_variable(self,
                                                             monkeypatch):
        # A typo'd rate must fail with an error that says which variable
        # is wrong and what it accepts — not a bare int() traceback.
        for raw in ("sixty-four", "64x", "1.5", ""):
            monkeypatch.setenv("REPRO_OBS_SAMPLE", raw)
            if not raw.strip():
                assert obs_sample_every() == DEFAULT_SAMPLE_EVERY
                continue
            with pytest.raises(ValueError,
                               match="REPRO_OBS_SAMPLE") as excinfo:
                obs_sample_every()
            assert raw in str(excinfo.value)
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "-3")
        with pytest.raises(ValueError, match="REPRO_OBS_SAMPLE"):
            obs_sample_every()

    def test_telemetry_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "sampled")
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "8")
        telemetry = Telemetry()
        assert telemetry.mode == "sampled"
        assert telemetry.sample_every == 8


class TestTelemetryModes:
    def test_full_mode_samples_everything(self):
        telemetry = Telemetry(mode="full")
        assert telemetry.enabled
        assert telemetry.sampler.every == 1
        assert all(telemetry.sampler.hit() for __ in range(5))

    def test_off_mode_uses_null_registry(self):
        telemetry = Telemetry(mode="off")
        assert telemetry.enabled is False
        assert telemetry.metrics is NULL_REGISTRY
        assert telemetry.tracer.enabled is False
        assert telemetry.sampler is NEVER_SAMPLER
        # Unguarded metric handles still work, recording nothing.
        counter = telemetry.metrics.counter("x")
        counter.inc()
        assert telemetry.metrics.snapshot() == {}

    def test_off_mode_resume_stays_off(self):
        telemetry = Telemetry(mode="off")
        telemetry.pause()
        telemetry.resume()
        assert telemetry.enabled is False
        assert telemetry.tracer.enabled is False

    def test_sampled_mode_resume_reenables(self):
        telemetry = Telemetry(mode="sampled", sample_every=4)
        telemetry.pause()
        assert not telemetry.enabled
        telemetry.resume()
        assert telemetry.enabled and telemetry.tracer.enabled

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            Telemetry(mode="loud")

    def test_null_telemetry_carries_tier_attrs(self):
        assert NULL_TELEMETRY.mode == "off"
        assert NULL_TELEMETRY.sampler is NEVER_SAMPLER
        assert NULL_TELEMETRY.sample_every == 0


class TestRootSpanSampling:
    def test_one_in_n_roots_with_whole_subtrees(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, mode="sampled", sample_every=3)
        tracer = telemetry.tracer
        for i in range(9):
            with tracer.span(f"root{i}"):
                with tracer.span(f"child{i}"):
                    pass
        names = {r["name"] for r in sink.spans()}
        # Roots 0, 3, 6 kept — each with its child; others fully dropped.
        assert names == {"root0", "child0", "root3", "child3",
                         "root6", "child6"}

    def test_kept_trees_preserve_parent_chain(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, mode="sampled", sample_every=2)
        tracer = telemetry.tracer
        with tracer.span("keep"):
            with tracer.span("inner"):
                pass
        spans = {r["name"]: r for r in sink.spans()}
        assert spans["inner"]["parent_id"] == spans["keep"]["span_id"]

    def test_full_mode_traces_every_root(self):
        sink = MemorySink()
        tracer = Telemetry(sink=sink, mode="full").tracer
        for i in range(4):
            with tracer.span(f"r{i}"):
                pass
        assert len(sink.spans()) == 4


class TestSampledDevicePath:
    def test_counters_exact_histograms_sampled(self):
        writes = 200
        telemetry = Telemetry(mode="sampled", sample_every=10)
        ssd = Ssd(SimClock(), small_ssd_config(),
                  telemetry=telemetry, name="dut")
        for i in range(writes):
            ssd.write(i % ssd.logical_pages, i)
        snap = telemetry.metrics.snapshot()
        assert snap["device.dut.write_commands"] == writes
        latency = snap["device.dut.latency_us.write"]
        # 1 in 10 latencies land in the histogram; counters stay exact.
        assert latency["count"] == writes // 10

    def test_full_mode_histograms_record_every_op(self):
        writes = 50
        telemetry = Telemetry(mode="full")
        ssd = Ssd(SimClock(), small_ssd_config(),
                  telemetry=telemetry, name="dut")
        for i in range(writes):
            ssd.write(i % ssd.logical_pages, i)
        snap = telemetry.metrics.snapshot()
        assert snap["device.dut.latency_us.write"]["count"] \
            == snap["device.dut.write_commands"] == writes

    def test_off_mode_records_nothing_but_device_works(self):
        telemetry = Telemetry(mode="off")
        ssd = Ssd(SimClock(), small_ssd_config(),
                  telemetry=telemetry, name="dut")
        for i in range(50):
            ssd.write(i % ssd.logical_pages, i)
        assert ssd.stats.host_write_pages == 50
        assert telemetry.metrics.snapshot() == {}
