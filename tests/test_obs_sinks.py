"""Tests for sinks (JSONL round-trip, periodic snapshotter) and the
IoTrace retention modes / span-compatibility view."""

import json

import pytest

from repro.obs import JsonlSink, MemorySink, Telemetry, TeeSink, read_jsonl
from repro.sim.clock import SimClock
from repro.ssd.trace import IoTrace, TraceEvent, trace_event_from_span


def make_event(index, kind="write"):
    return TraceEvent(timestamp_us=index, kind=kind, lpn=index, count=1,
                      latency_us=float(index))


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        records = [
            {"type": "span", "name": "device.write", "span_id": 1,
             "parent_id": None, "trace_id": 1, "start_us": 0, "end_us": 5,
             "duration_us": 5, "attrs": {"lpn": 3}},
            {"type": "metrics", "t_us": 10, "metrics": {"a.b": 2}},
        ]
        for record in records:
            sink.emit(record)
        sink.close()
        assert sink.emitted == 2
        assert read_jsonl(path) == records

    def test_one_object_per_line(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "metrics", "t_us": 0, "metrics": {}})
        sink.close()
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "metrics"

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "out.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"type": "metrics"})

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(str(path))


class TestTeeSink:
    def test_fans_out_and_closes(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(str(tmp_path / "out.jsonl"))
        tee = TeeSink(memory, jsonl)
        tee.emit({"type": "metrics", "t_us": 0, "metrics": {}})
        tee.close()
        assert len(memory.records) == 1
        assert jsonl.emitted == 1


class TestPeriodicSnapshotter:
    def test_snapshots_on_interval(self):
        telemetry = Telemetry(MemorySink(), snapshot_interval_us=100)
        clock = SimClock()
        telemetry.bind_clock(clock)
        telemetry.metrics.counter("c").inc()
        assert not telemetry.maybe_snapshot(clock.now_us)  # not yet due
        clock.advance(100)
        assert telemetry.maybe_snapshot(clock.now_us)
        clock.advance(50)
        assert not telemetry.maybe_snapshot(clock.now_us)
        clock.advance(50)
        assert telemetry.maybe_snapshot(clock.now_us)
        snapshots = telemetry.sink.metrics()
        assert [s["t_us"] for s in snapshots] == [100, 200]
        assert snapshots[0]["metrics"]["c"] == 1

    def test_zero_interval_disables_cadence(self):
        telemetry = Telemetry(MemorySink(), snapshot_interval_us=0)
        telemetry.bind_clock(SimClock())
        assert not telemetry.maybe_snapshot(10**9)
        assert telemetry.sink.metrics() == []

    def test_paused_telemetry_skips_snapshots(self):
        telemetry = Telemetry(MemorySink(), snapshot_interval_us=1)
        telemetry.bind_clock(SimClock())
        telemetry.pause()
        assert not telemetry.maybe_snapshot(100)
        assert telemetry.sink.metrics() == []

    def test_close_emits_final_snapshot(self):
        telemetry = Telemetry(MemorySink())
        telemetry.metrics.counter("c").inc(3)
        record = telemetry.close()
        assert record["metrics"]["c"] == 3
        assert telemetry.sink.metrics()[-1] == record


class TestIoTraceRetention:
    def test_keep_oldest_drops_new_events(self):
        trace = IoTrace(capacity=3, keep="oldest")
        for index in range(5):
            trace.record(make_event(index))
        assert [e.lpn for e in trace] == [0, 1, 2]
        assert trace.dropped == 2

    def test_keep_newest_is_a_ring(self):
        trace = IoTrace(capacity=3, keep="newest")
        for index in range(5):
            trace.record(make_event(index))
        assert [e.lpn for e in trace] == [2, 3, 4]
        assert trace.dropped == 2

    def test_snapshot_surfaces_drop_accounting(self):
        trace = IoTrace(capacity=2, keep="newest")
        for index in range(5):
            trace.record(make_event(index))
        assert trace.snapshot() == {
            "capacity": 2, "recorded": 2, "dropped": 3, "keep": "newest"}

    def test_invalid_keep_rejected(self):
        with pytest.raises(ValueError, match="keep"):
            IoTrace(capacity=1, keep="middle")

    def test_clear_resets_drop_count(self):
        trace = IoTrace(capacity=1)
        trace.record(make_event(0))
        trace.record(make_event(1))
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0


class TestSpanCompatibilityView:
    def span_record(self, kind="write", lpn=7):
        return {"type": "span", "name": f"device.{kind}", "span_id": 1,
                "parent_id": None, "trace_id": 1, "start_us": 10,
                "end_us": 30, "duration_us": 20,
                "attrs": {"kind": kind, "lpn": lpn, "count": 2,
                          "latency_us": 20.0, "gc_events": 1,
                          "copyback_pages": 4}}

    def test_event_from_span(self):
        event = trace_event_from_span(self.span_record())
        assert event == TraceEvent(timestamp_us=30, kind="write", lpn=7,
                                   count=2, latency_us=20.0, gc_events=1,
                                   copyback_pages=4)

    def test_from_span_records_filters_non_device(self):
        records = [
            self.span_record(),
            {"type": "span", "name": "ftl.gc", "span_id": 2,
             "parent_id": 1, "trace_id": 1, "start_us": 0, "end_us": 0,
             "duration_us": 0, "attrs": {}},
            {"type": "metrics", "t_us": 0, "metrics": {}},
        ]
        trace = IoTrace.from_span_records(records)
        assert len(trace) == 1
        assert trace.events("write")[0].lpn == 7

    def test_kind_falls_back_to_span_name(self):
        record = self.span_record()
        del record["attrs"]["kind"]
        assert trace_event_from_span(record).kind == "write"
