"""Tests for the workload drivers: determinism, mix, latency recording."""

import pytest

from repro.bench.harness import SCALES, Scale, build_couch_stack, build_innodb_stack
from repro.couchstore.engine import CommitMode
from repro.innodb.engine import FlushMode
from repro.workloads.linkbench import (
    DEFAULT_MIX,
    READ_OPS,
    WRITE_OPS,
    LinkBenchConfig,
    LinkBenchDriver,
)
from repro.workloads.pgbench import PgBenchConfig, run_pgbench, setup_pgbench
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload


def small_linkbench(mode=FlushMode.SHARE, nodes=800, seed=42):
    stack = build_innodb_stack(mode, 4096, buffer_pool_pages=64,
                               db_pages_estimate=500, age_device=False)
    driver = LinkBenchDriver(stack.engine, stack.clock,
                             LinkBenchConfig(node_count=nodes, seed=seed))
    driver.load()
    return stack, driver


class TestLinkBench:
    def test_mix_covers_the_papers_ops(self):
        names = {name for name, __ in DEFAULT_MIX}
        assert names == READ_OPS | WRITE_OPS
        assert len(names) == 10

    def test_weights_sum_to_about_100(self):
        assert sum(w for __, w in DEFAULT_MIX) == pytest.approx(100.5)

    def test_run_records_latency_per_op(self):
        __, driver = small_linkbench()
        result = driver.run(800)
        assert result.transactions == 800
        assert result.throughput_tps > 0
        table = result.latencies.table()
        assert "Get_Link_List" in table
        for summary in table.values():
            assert summary["mean"] >= 0

    def test_op_counts_match_transactions(self):
        __, driver = small_linkbench()
        result = driver.run(500)
        assert sum(result.op_counts.values()) == 500

    def test_deterministic_given_seed(self):
        __, driver_a = small_linkbench(seed=7)
        __, driver_b = small_linkbench(seed=7)
        result_a = driver_a.run(300)
        result_b = driver_b.run(300)
        assert result_a.op_counts == result_b.op_counts
        assert result_a.elapsed_seconds == result_b.elapsed_seconds

    def test_graph_is_consistent_after_run(self):
        stack, driver = small_linkbench()
        driver.run(1000)
        engine = stack.engine
        # Every count row is non-negative and every link key well-formed.
        with engine.transaction() as txn:
            for key, value in engine.table("count").items():
                assert value >= 0
            for key, __ in engine.table("link").items():
                assert len(key) == 3

    def test_add_node_extends_id_space(self):
        __, driver = small_linkbench()
        before = driver._next_node_id
        driver.run(1000)
        assert driver._next_node_id > before


class TestYcsb:
    def make(self, mode=CommitMode.SHARE, records=500):
        stack = build_couch_stack(mode, records, 2000)
        driver = YcsbDriver(stack.store, stack.clock,
                            YcsbConfig(record_count=records))
        driver.load()
        return stack, driver

    def test_load_inserts_every_record(self):
        stack, __ = self.make()
        assert stack.store.doc_count == 500

    def test_workload_f_is_all_rmw(self):
        __, driver = self.make()
        result = driver.run(YcsbWorkload.F, 400, batch_size=8)
        assert result.reads == 400
        assert result.writes == 400
        assert result.operations == 400

    def test_workload_a_is_half_reads(self):
        __, driver = self.make()
        result = driver.run(YcsbWorkload.A, 1000, batch_size=8)
        assert result.reads + result.writes == 1000
        assert 350 < result.reads < 650

    def test_batch_size_controls_commits(self):
        __, driver = self.make()
        commits_before = driver.store.stats.commits
        driver.run(YcsbWorkload.F, 128, batch_size=16)
        commits = driver.store.stats.commits - commits_before
        assert commits == 8

    def test_bad_batch_size(self):
        __, driver = self.make()
        with pytest.raises(ValueError):
            driver.run(YcsbWorkload.F, 10, batch_size=0)

    def test_zipfian_skew_hits_hot_keys(self):
        __, driver = self.make()
        draws = [driver._chooser.next() for __ in range(4000)]
        from collections import Counter
        hottest = Counter(draws).most_common(1)[0][1]
        assert hottest > 4000 * 0.02

    def test_latency_histogram_populated(self):
        __, driver = self.make()
        result = driver.run(YcsbWorkload.F, 100, batch_size=4)
        assert result.latency_ms.count == 100

    def test_timeline_recording(self):
        __, driver = self.make()
        result = driver.run(YcsbWorkload.F, 50, batch_size=4,
                            record_timeline=True)
        assert len(result.completion_times_us) == 50
        assert result.completion_times_us == sorted(
            result.completion_times_us)
        windows = result.windowed_throughput(window_seconds=0.05)
        assert sum(w * 0.05 for w in windows) == pytest.approx(50, abs=1)

    def test_windowed_throughput_needs_timeline(self):
        __, driver = self.make()
        result = driver.run(YcsbWorkload.F, 10, batch_size=4)
        with pytest.raises(ValueError):
            result.windowed_throughput(1.0)

    def test_auto_compact_replaces_store(self):
        stack, driver = None, None
        from repro.bench.harness import build_couch_stack
        from repro.couchstore.engine import CommitMode, CouchConfig
        stack = build_couch_stack(
            CommitMode.SHARE, 300, 6000,
            config=CouchConfig(compaction_stale_ratio=0.4))
        driver = YcsbDriver(stack.store, stack.clock,
                            YcsbConfig(record_count=300))
        driver.load()
        result = driver.run(YcsbWorkload.F, 2000, batch_size=8,
                            auto_compact=True)
        assert result.compactions, "compaction should have triggered"
        # The driver's store was swapped for the compacted one and the
        # data survived every swap.
        assert driver.store.stats.compactions >= 1
        for key in range(0, 300, 37):
            assert driver.store.get(key) is not None


class TestPgBench:
    def test_runs_and_reports(self):
        from repro.bench.harness import build_postgres_stack
        clock, __, __, engine = build_postgres_stack(True, scale=1)
        config = PgBenchConfig(scale=1)
        setup_pgbench(engine, config)
        clock.reset()
        result = run_pgbench(engine, clock, 200, config)
        assert result.transactions == 200
        assert result.throughput_tps > 0
        assert result.wal_bytes > 0
        assert result.full_page_writes

    def test_scale_sizes(self):
        config = PgBenchConfig(scale=3)
        assert config.accounts == 30_000
        assert config.tellers == 30
        assert config.branches == 3


class TestScales:
    def test_all_scales_defined(self):
        for scale in Scale:
            params = SCALES[scale]
            assert params.linkbench_nodes > 0
            assert params.ycsb_records > 0


class TestConcurrentClients:
    """Closed-loop clients through the real device queue."""

    def test_linkbench_concurrency_matches_serial_throughput_at_qd1(self):
        # At the default device configuration (QD1, one channel, a
        # shared queue) N clients serialise exactly like one: same
        # makespan, same throughput — only recorded latencies grow by
        # the queueing wait.
        def run(concurrency, seed=7):
            stack = build_innodb_stack(FlushMode.SHARE, 4096, 64, 2000,
                                       age_device=False)
            driver = LinkBenchDriver(
                stack.engine, stack.clock,
                LinkBenchConfig(node_count=300, seed=seed))
            driver.load()
            return driver.run(400, concurrency=concurrency)

        serial = run(1)
        queued = run(8)
        assert queued.elapsed_seconds == serial.elapsed_seconds
        assert queued.throughput_tps == serial.throughput_tps
        mean_serial = sum(
            s["mean"] for s in serial.latencies.table().values())
        mean_queued = sum(
            s["mean"] for s in queued.latencies.table().values())
        assert mean_queued > mean_serial

    def test_linkbench_deep_queue_multi_channel_shrinks_makespan(self):
        def run(queue_depth, channel_count):
            stack = build_innodb_stack(FlushMode.SHARE, 4096, 64, 2000,
                                       age_device=False,
                                       queue_depth=queue_depth,
                                       channel_count=channel_count)
            driver = LinkBenchDriver(
                stack.engine, stack.clock,
                LinkBenchConfig(node_count=300))
            driver.load()
            return driver.run(400, concurrency=8)

        assert (run(8, 4).elapsed_seconds
                < run(1, 1).elapsed_seconds)

    def test_ycsb_concurrency_runs_and_preserves_counts(self):
        stack = build_couch_stack(CommitMode.SHARE, 400, 2000,
                                  queue_depth=8, channel_count=2)
        driver = YcsbDriver(stack.store, stack.clock,
                            YcsbConfig(record_count=400))
        driver.load()
        result = driver.run(YcsbWorkload.A, 600, batch_size=8,
                            concurrency=8)
        assert result.reads + result.writes == 600
        assert result.operations == 600
        assert result.elapsed_seconds > 0
        assert stack.ssd.poll() == 0   # everything drained

    def test_ycsb_serial_path_unchanged_by_concurrency_param(self):
        def run(**kwargs):
            stack = build_couch_stack(CommitMode.SHARE, 300, 1500)
            driver = YcsbDriver(stack.store, stack.clock,
                                YcsbConfig(record_count=300))
            driver.load()
            return driver.run(YcsbWorkload.F, 300, batch_size=8, **kwargs)

        assert (run().elapsed_seconds
                == run(concurrency=1).elapsed_seconds)
