"""Crash-recovery tests for the FTL: the delta-log atomicity protocol of
Section 4.2.2 / Figure 4, exercised with injected power failures."""

import pytest

from repro.errors import PowerFailure
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import SharePair
from repro.sim.faults import FaultPlan, PowerFailAfter


def make_stack(share_entries=250, faults=None):
    geo = FlashGeometry(page_size=4096, pages_per_block=32, block_count=64,
                        overprovision_ratio=0.125)
    nand = NandArray(geo)
    config = FtlConfig(map_block_count=4, share_table_entries=share_entries)
    ftl = PageMappingFtl(nand, config, faults or FaultPlan())
    return nand, config, ftl


def recover(nand, config):
    return PageMappingFtl.recover(nand, config)


class TestPlainRecovery:
    def test_writes_survive(self):
        nand, config, ftl = make_stack()
        for i in range(200):
            ftl.write(i % 50, ("v", i))
        recovered = recover(nand, config)
        for lpn in range(50):
            assert recovered.read(lpn) == ftl.read(lpn)
        recovered.check_invariants()

    def test_trim_survives(self):
        nand, config, ftl = make_stack()
        ftl.write(1, "x")
        ftl.trim(1)
        ftl.flush()
        recovered = recover(nand, config)
        assert not recovered.is_mapped(1)

    def test_unflushed_trim_may_resurrect_but_is_consistent(self):
        # TRIM durability is only promised at flush, like real TRIM.
        nand, config, ftl = make_stack()
        ftl.write(1, "x")
        ftl.trim(1)  # pending, below the auto-flush threshold
        recovered = recover(nand, config)
        if recovered.is_mapped(1):
            assert recovered.read(1) == "x"
        recovered.check_invariants()

    def test_share_survives(self):
        nand, config, ftl = make_stack()
        ftl.write(1, "v1")
        ftl.share(2, 1)
        ftl.write(1, "v2")
        recovered = recover(nand, config)
        assert recovered.read(2) == "v1"
        assert recovered.read(1) == "v2"
        recovered.check_invariants()

    def test_gc_survives(self):
        nand, config, ftl = make_stack()
        hot = 40
        for i in range(ftl.logical_pages * 3):
            ftl.write(i % hot, ("w", i))
        assert ftl.stats.gc_events > 0
        recovered = recover(nand, config)
        for lpn in range(hot):
            assert recovered.read(lpn) == ftl.read(lpn)
        recovered.check_invariants()

    def test_recovery_continues_sequence(self):
        nand, config, ftl = make_stack()
        ftl.write(1, "a")
        recovered = recover(nand, config)
        recovered.write(1, "b")
        again = recover(nand, config)
        assert again.read(1) == "b"


class TestShareAtomicity:
    """Crash on either side of the SHARE commit point (Figure 4)."""

    def test_crash_before_commit_keeps_old_mapping(self):
        faults = FaultPlan()
        nand, config, ftl = make_stack(faults=faults)
        ftl.write(1, "new-copy")
        ftl.write(2, "old-copy")
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            ftl.share(2, 1)
        recovered = recover(nand, config)
        assert recovered.read(2) == "old-copy"
        assert recovered.read(1) == "new-copy"
        recovered.check_invariants()

    def test_crash_after_commit_keeps_new_mapping(self):
        faults = FaultPlan()
        nand, config, ftl = make_stack(faults=faults)
        ftl.write(1, "new-copy")
        ftl.write(2, "old-copy")
        faults.arm(PowerFailAfter("maplog.after_commit"))
        with pytest.raises(PowerFailure):
            ftl.share(2, 1)
        recovered = recover(nand, config)
        assert recovered.read(2) == "new-copy"
        recovered.check_invariants()

    def test_batch_is_all_or_nothing_before_commit(self):
        faults = FaultPlan()
        nand, config, ftl = make_stack(faults=faults)
        for i in range(4):
            ftl.write(i, ("new", i))
            ftl.write(100 + i, ("old", i))
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            ftl.share_batch([SharePair(100 + i, i) for i in range(4)])
        recovered = recover(nand, config)
        for i in range(4):
            assert recovered.read(100 + i) == ("old", i)

    def test_batch_is_all_or_nothing_after_commit(self):
        faults = FaultPlan()
        nand, config, ftl = make_stack(faults=faults)
        for i in range(4):
            ftl.write(i, ("new", i))
            ftl.write(100 + i, ("old", i))
        faults.arm(PowerFailAfter("maplog.after_commit"))
        with pytest.raises(PowerFailure):
            ftl.share_batch([SharePair(100 + i, i) for i in range(4)])
        recovered = recover(nand, config)
        for i in range(4):
            assert recovered.read(100 + i) == ("new", i)


class TestMapLogCheckpoint:
    def test_log_wraps_and_survives(self):
        # Enough SHARE commands to exhaust the map region and force a
        # checkpoint; everything must still recover.
        nand, config, ftl = make_stack()
        ftl.write(1, "payload")
        pages_in_log = 4 * nand.geometry.pages_per_block
        for round_number in range(pages_in_log + 8):
            ftl.write(1, ("payload", round_number))
            ftl.share(2, 1)
        assert ftl.maplog.checkpoints >= 1
        recovered = recover(nand, config)
        assert recovered.read(2) == ("payload", pages_in_log + 7)
        recovered.check_invariants()

    def test_crash_during_write_leaves_old_or_new(self):
        faults = FaultPlan()
        nand, config, ftl = make_stack(faults=faults)
        ftl.write(7, "old")
        faults.arm(PowerFailAfter("ftl.before_program", nth=1))
        with pytest.raises(PowerFailure):
            ftl.write(7, "new")
        recovered = recover(nand, config)
        # The program never happened: the page must read old.
        assert recovered.read(7) == "old"

    def test_crash_after_program_shows_new(self):
        faults = FaultPlan()
        nand, config, ftl = make_stack(faults=faults)
        ftl.write(7, "old")
        faults.arm(PowerFailAfter("ftl.after_program", nth=1))
        with pytest.raises(PowerFailure):
            ftl.write(7, "new")
        recovered = recover(nand, config)
        assert recovered.read(7) == "new"
