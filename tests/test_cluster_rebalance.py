"""Tests for ring resize and live key migration: post-avalanche ring
balance and minimal movement, the dual-read handoff window, early
settlement by client writes, SHARE-aware transfers, migration-epoch
fencing (StaleEpochError), shard removal, and a kill landing
mid-migration."""

import pytest

from repro.cluster import HashRing, ShardGroup, ShardRouter
from repro.errors import ClusterError, StaleEpochError
from repro.sim.events import EventScheduler
from repro.ssd.device import Ssd

from conftest import small_ssd_config


def make_router(clock, shards=3, replicas=1, spare=True):
    events = EventScheduler(clock)

    def device(name):
        return Ssd(clock, small_ssd_config(), name=name, events=events)

    def group(index):
        return ShardGroup(f"shard{index}", device(f"s{index}p"),
                          [device(f"s{index}r{j}") for j in range(replicas)])

    groups = [group(i) for i in range(shards)]
    router = ShardRouter(groups, clock)
    return router, (group(shards) if spare else None)


def load(router, keys=60):
    for n in range(keys):
        router.put(("node", n), ("v", n))
    return [("node", n) for n in range(keys)]


# ---------------------------------------------------------------- HashRing


class TestRingRebalance:
    def test_avalanched_points_balance_the_ring(self):
        """Vnode names differ only in a short suffix; without the mix
        finalizer their points collapse into one arc per node."""
        ring = HashRing(["shard0", "shard1", "shard2"])
        spread = ring.spread([("node", n) for n in range(600)])
        assert min(spread.values()) * 4 > max(spread.values())

    def test_add_moves_a_minority_of_keys(self):
        old = HashRing(["shard0", "shard1", "shard2"])
        new = old.rebalance(add=["shard3"])
        keys = [("node", n) for n in range(400)]
        moved = old.moved_keys(keys, new)
        assert 0 < len(moved) < len(keys) // 2
        # Consistent hashing: every move lands on the new node, and the
        # new node serves real load afterwards.
        assert all(dst == "shard3" for __, dst in moved.values())
        assert new.spread(keys)["shard3"] == len(moved)

    def test_remove_relocates_only_the_departed_nodes_keys(self):
        old = HashRing(["shard0", "shard1", "shard2"])
        new = old.rebalance(remove=["shard1"])
        keys = [("node", n) for n in range(400)]
        moved = old.moved_keys(keys, new)
        assert set(moved) == {k for k in keys if old.lookup(k) == "shard1"}

    def test_membership_validation(self):
        ring = HashRing(["shard0", "shard1"])
        with pytest.raises(ValueError):
            ring.rebalance(add=["shard0"])
        with pytest.raises(ValueError):
            ring.rebalance(remove=["shard9"])
        with pytest.raises(ValueError):
            ring.rebalance(remove=["shard0", "shard1"])


# ------------------------------------------------------- live migration


class TestLiveMigration:
    def test_stepped_migration_moves_every_pending_key(self, clock):
        router, spare = make_router(clock)
        keys = load(router)
        rebalancer = router.start_rebalance(add=spare)
        assert router.migration_pending > 0
        assert "shard3" in router.pairs          # ring swapped already
        while not rebalancer.done:
            rebalancer.step()
        assert router.migration_pending == 0
        assert rebalancer.moved == router.stats.migrated_keys > 0
        for key in keys:
            assert router.get(key) == ("v", key[1])
        assert any(key in router.pairs["shard3"].directory for key in keys)

    def test_dual_read_serves_pending_keys_from_old_owner(self, clock):
        router, spare = make_router(clock)
        keys = load(router)
        router.start_rebalance(add=spare)
        # Nothing migrated yet: every key must still read through the
        # old owner, including keys the ring now maps to shard3.
        routed_to_new = [k for k in keys if router.ring.lookup(k) == "shard3"]
        assert routed_to_new
        for key in keys:
            assert router.get(key) == ("v", key[1])

    def test_client_write_settles_a_pending_key_early(self, clock):
        router, spare = make_router(clock)
        load(router)
        router.start_rebalance(add=spare)
        state = router._migration
        key = next(iter(state.pending))
        old_owner = router._group(state.pending[key])
        router.put(key, "fresh")
        assert key not in state.pending          # superseded, not moved
        assert key not in old_owner.directory    # retired from the source
        assert router.get(key) == "fresh"

    def test_share_provenance_migrates_as_remap(self, clock):
        """A snapshot whose source lands on the same destination moves
        as a SHARE remap, not a byte copy."""
        router, spare = make_router(clock)
        load(router, keys=80)
        # Same-shard snapshots: provenance recorded on the old owner.
        snaps = []
        for n in range(80):
            src = ("node", n)
            dst = ("snap", n)
            if router.pair_for(src) is router.pair_for(dst):
                router.share(dst, src)
                snaps.append((dst, src))
        assert snaps
        rebalancer = router.start_rebalance(add=spare)
        rebalancer.run()
        for dst, src in snaps:
            assert router.get(dst) == router.get(src)
        # At least one pair landed together on shard3 in most layouts;
        # assert only consistency plus the counter when it happened.
        assert router.stats.shared_migrations == rebalancer.shared

    def test_remove_retires_the_shard(self, clock):
        router, __ = make_router(clock, spare=False)
        keys = load(router)
        victim = router.pair_for(keys[0]).name
        rebalancer = router.start_rebalance(remove=victim)
        rebalancer.run()
        assert victim not in router.pairs
        assert victim in router.retired
        assert router._group(victim).directory == {}
        for key in keys:
            assert router.get(key) == ("v", key[1])

    def test_second_rebalance_fences_the_stale_rebalancer(self, clock):
        router, spare = make_router(clock)
        load(router)
        stale = router.start_rebalance(add=spare)
        router.finish_rebalance()                # drains via the state
        second = router.start_rebalance(remove="shard3")
        with pytest.raises(StaleEpochError):
            stale.step()
        assert router.migration_epoch == second.epoch == 2
        second.run()

    def test_one_rebalance_at_a_time(self, clock):
        router, spare = make_router(clock)
        load(router)
        router.start_rebalance(add=spare)
        with pytest.raises(ClusterError):
            router.start_rebalance(remove="shard0")

    def test_kill_mid_migration_loses_nothing(self, clock):
        router, spare = make_router(clock)
        keys = load(router)
        router.pump_replication()
        rebalancer = router.start_rebalance(add=spare)
        rebalancer.step()                        # partial progress
        victim = sorted(router.pairs)[0]
        router.kill_shard(victim)
        router.ensure_healthy()                  # promote, then resume
        router.finish_rebalance()
        assert router.migration_pending == 0
        for key in keys:
            assert router.get(key) == ("v", key[1])


# --------------------------------------------------- epoch fencing (log)


class TestStaleEpochRejoin:
    def test_rejoined_old_primary_replays_cleanly_across_epochs(self, clock):
        """The demoted primary rejoins at watermark 0 and replays a log
        holding epoch-0 *and* epoch-1 records; the full replay is the
        legitimate path and must not trip the fence."""
        router, __ = make_router(clock, spare=False)
        keys = load(router, keys=20)
        pair = router.pair_for(keys[0])
        router.pump_replication()
        router.kill_shard(pair.name)
        router.ensure_healthy()                  # epoch 0 -> 1
        router.put(keys[0], "post-failover")     # epoch-1 tail
        assert pair.log.epoch == 1
        applied = router.pump_replication()      # rejoin replay
        assert applied > 0
        assert pair.repl_lag == 0
        assert router.get(keys[0]) == "post-failover"

    def test_stale_epoch_append_is_refused(self, clock):
        """A zombie demoted primary trying to extend the log with its
        pre-failover epoch is fenced out."""
        router, __ = make_router(clock, spare=False)
        keys = load(router, keys=10)
        pair = router.pair_for(keys[0])
        log = pair.log
        stale_record = log.append("write", keys[0], 0, "zombie")
        router.kill_shard(pair.name)
        router.ensure_healthy()                  # bumps the log epoch
        zombie = stale_record._replace(seq=log.tip + 1)
        assert zombie.epoch < log.epoch
        with pytest.raises(StaleEpochError):
            log.append_record(zombie)


# ------------------------------------- breaker-open source, share path


class TestShareWithSourceBreakerOpen:
    def test_cross_shard_share_degrades_to_copy_through_promotion(
            self, clock):
        """Source shard's breaker latched open (primary dead): the
        cross-shard share must promote the source's replica, read the
        value there, and land the copy on the destination."""
        router, __ = make_router(clock, spare=False)
        load(router, keys=40)
        router.pump_replication()                # replicas caught up
        # Find a cross-shard (src, dst) pair.
        src_key = dst_key = None
        for n in range(40):
            for m in range(40):
                if router.pair_for(("node", n)) \
                        is not router.pair_for(("snap", m)):
                    src_key, dst_key = ("node", n), ("snap", m)
                    break
            if src_key:
                break
        src_pair = router.pair_for(src_key)
        router.kill_shard(src_pair.name)         # breaker open on source
        copies_before = router.stats.cross_shard_copies
        record = router.share(dst_key, src_key)
        assert record is not None
        assert router.stats.cross_shard_copies == copies_before + 1
        assert router.stats.failovers == 1       # promoted to serve read
        assert router.get(dst_key) == router.get(src_key) \
            == ("v", src_key[1])

    def test_same_shard_share_survives_open_breaker(self, clock):
        router, __ = make_router(clock, spare=False)
        load(router, keys=40)
        router.pump_replication()
        src_key = ("node", 0)
        pair = router.pair_for(src_key)
        dst_key = next(("snap", m) for m in range(200)
                       if router.pair_for(("snap", m)) is pair)
        router.kill_shard(pair.name)
        record = router.share(dst_key, src_key)
        assert record is not None
        assert router.get(dst_key) == ("v", 0)
