"""Integration tests: telemetry wired through the device, FTL, host and
engines — GC attribution via span parent chains, registry/DeviceStats
parity, and the DeviceStats audit (new spill/wear counters, WAF guard)."""

import pytest

from repro.couchstore.engine import CommitMode
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.innodb.engine import FlushMode
from repro.obs import MemorySink, NULL_TELEMETRY, Telemetry
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig
from repro.ssd.stats import DeviceStats

from conftest import small_ssd_config


def telemetry_ssd(clock, **config_kwargs):
    telemetry = Telemetry(MemorySink())
    ssd = Ssd(clock, small_ssd_config(**config_kwargs),
              telemetry=telemetry, name="dut")
    return telemetry, ssd


def churn_until_gc(ssd):
    hot = ssd.logical_pages // 4
    for i in range(ssd.logical_pages * 3):
        ssd.write(i % hot, i)
    assert ssd.stats.gc_events > 0


class TestDeviceMetrics:
    def test_registry_matches_device_stats(self, clock):
        telemetry, ssd = telemetry_ssd(clock)
        churn_until_gc(ssd)
        ssd.trim(0)
        ssd.flush()
        snap = telemetry.metrics.snapshot()
        stats = ssd.stats
        assert snap["device.dut.host_write_pages"] == stats.host_write_pages
        assert snap["device.dut.trim_commands"] == stats.trim_commands
        assert snap["device.dut.flush_commands"] == stats.flush_commands
        assert snap["ftl.gc.events"] == stats.gc_events
        assert snap["ftl.gc.copyback_pages"] == stats.copyback_pages
        assert snap["ftl.gc.block_erases"] == stats.block_erases
        assert snap["ftl.maplog.page_writes"] == stats.map_page_writes

    def test_latency_histograms_recorded(self, clock):
        telemetry, ssd = telemetry_ssd(clock)
        ssd.write(0, "a")
        ssd.read(0)
        snap = telemetry.metrics.snapshot()
        assert snap["device.dut.latency_us.write"]["count"] == 1
        assert snap["device.dut.latency_us.read"]["count"] == 1
        assert snap["device.dut.latency_us.read"]["max"] > 0

    def test_reset_measurement_zeroes_registry(self, clock):
        telemetry, ssd = telemetry_ssd(clock)
        ssd.write(0, "a")
        ssd.reset_measurement()
        snap = telemetry.metrics.snapshot()
        assert snap["device.dut.host_write_pages"] == 0
        assert ssd.stats.host_write_pages == 0


class TestGcAttribution:
    def test_gc_spans_nest_under_device_commands(self, clock):
        telemetry, ssd = telemetry_ssd(clock)
        churn_until_gc(ssd)
        spans = telemetry.sink.spans()
        by_id = {s["span_id"]: s for s in spans}
        gc_spans = [s for s in spans if s["name"] == "ftl.gc"]
        assert gc_spans
        for gc in gc_spans:
            assert gc["parent_id"] is not None
            root = gc
            while root["parent_id"] is not None:
                root = by_id[root["parent_id"]]
            assert root["name"].startswith("device.")
            assert gc["trace_id"] == root["span_id"]
            assert "copyback_pages" in gc["attrs"]

    def test_device_span_carries_gc_cost(self, clock):
        telemetry, ssd = telemetry_ssd(clock)
        churn_until_gc(ssd)
        writes = telemetry.sink.spans("device.write")
        assert sum(s["attrs"]["gc_events"] for s in writes) == \
            ssd.stats.gc_events
        assert sum(s["attrs"]["copyback_pages"] for s in writes) == \
            ssd.stats.copyback_pages


class TestEngineSpans:
    def test_innodb_share_flush_attribution(self):
        from repro.bench.harness import build_innodb_stack
        telemetry = Telemetry(MemorySink())
        stack = build_innodb_stack(FlushMode.SHARE, 4096,
                                   buffer_pool_pages=64,
                                   db_pages_estimate=512,
                                   age_device=False, telemetry=telemetry)
        engine = stack.engine
        table = engine.create_table("t")
        for key in range(600):
            with engine.transaction() as txn:
                txn.put("t", key, ("row", key))
        engine.checkpoint()
        spans = telemetry.sink.spans()
        names = {s["name"] for s in spans}
        assert "innodb.txn_commit" in names
        assert "innodb.flush_batch" in names
        assert "innodb.dwb.stage" in names
        assert "host.share_ioctl" in names
        assert "device.share" in names
        # The share ioctl span is a descendant of a flush batch.
        by_id = {s["span_id"]: s for s in spans}
        ioctl = next(s for s in spans if s["name"] == "host.share_ioctl")
        chain = set()
        walk = ioctl
        while walk["parent_id"] is not None:
            walk = by_id[walk["parent_id"]]
            chain.add(walk["name"])
        assert "innodb.flush_batch" in chain
        snap = telemetry.metrics.snapshot()
        assert snap["innodb.dwb.share_batches"] > 0
        assert snap["innodb.transactions"] == 600
        assert table is engine.table("t")

    def test_couch_commit_spans_and_counters(self):
        from repro.bench.harness import build_couch_stack
        telemetry = Telemetry(MemorySink())
        stack = build_couch_stack(CommitMode.SHARE, record_count=200,
                                  operations_estimate=400,
                                  telemetry=telemetry)
        store = stack.store
        for key in range(100):
            store.set(key, ("doc", key))
        store.commit()
        for key in range(50):
            store.set(key, ("doc2", key))
        store.commit()
        spans = telemetry.sink.spans("couch.commit")
        assert len(spans) == 2
        assert spans[1]["attrs"]["share_pairs"] == 50
        snap = telemetry.metrics.snapshot()
        assert snap["couch.commits"] == 2
        assert snap["couch.share_pairs"] == 50
        assert snap["couch.doc_blocks_written"] == 150

    def test_couch_compaction_span(self):
        from repro.bench.harness import build_couch_stack
        from repro.couchstore.compaction import compact
        telemetry = Telemetry(MemorySink())
        stack = build_couch_stack(CommitMode.SHARE, record_count=100,
                                  operations_estimate=400,
                                  telemetry=telemetry)
        store = stack.store
        for key in range(100):
            store.set(key, ("doc", key))
        store.commit()
        for key in range(100):
            store.set(key, ("doc2", key))
        store.commit()
        new_store, result = compact(store, stack.clock)
        (span,) = telemetry.sink.spans("couch.compaction")
        assert span["attrs"]["mode"] == "share"
        assert span["attrs"]["docs_moved"] == result.docs_moved
        snap = telemetry.metrics.snapshot()
        assert snap["couch.compaction.runs"] == 1
        assert snap["couch.compaction.pages_moved"] == result.docs_moved
        assert new_store.doc_count == 100


class TestNullTelemetryDefault:
    def test_device_defaults_to_null(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        assert ssd.telemetry is NULL_TELEMETRY
        ssd.write(0, "a")  # must not blow up, must not allocate metrics
        assert NULL_TELEMETRY.metrics.snapshot() == {}

    def test_disabled_telemetry_same_virtual_time(self, clock):
        """Telemetry must never change simulated behaviour: identical
        workloads advance the virtual clock identically with and without
        instrumentation (throughput is ops / virtual time)."""
        def run(telemetry):
            local_clock = SimClock()
            ssd = Ssd(local_clock, small_ssd_config(), telemetry=telemetry)
            hot = ssd.logical_pages // 4
            for i in range(ssd.logical_pages * 2):
                ssd.write(i % hot, i)
            return local_clock.now_us, ssd.stats.snapshot()
        plain_time, plain_stats = run(None)
        telemetry = Telemetry(MemorySink())
        traced_time, traced_stats = run(telemetry)
        assert plain_time == traced_time
        assert plain_stats == traced_stats


class TestDeviceStatsAudit:
    def test_new_counters_reach_snapshot(self, clock):
        telemetry, ssd = telemetry_ssd(clock, share_entries=2)
        ssd.write(0, "x")
        # Overflow the reverse-map so SHARE references spill to the log.
        for dst in range(1, 8):
            ssd.share(dst, 0)
        churn_until_gc(ssd)
        snap = ssd.stats.snapshot()
        assert "share_log_spills" in snap
        assert "spill_lookups" in snap
        assert "wear_level_moves" in snap
        assert snap["share_log_spills"] == ssd.stats.share_log_spills
        # FTL spill counters mirror into the registry.
        reg = telemetry.metrics.snapshot()
        assert reg["ftl.share.log_spills"] == ssd.stats.share_log_spills
        assert reg["ftl.gc.spill_lookups"] == ssd.stats.spill_lookups

    def test_waf_zero_host_writes_guarded(self):
        stats = DeviceStats()
        stats.map_page_writes = 5  # internal traffic only
        assert stats.write_amplification == 0.0

    def test_delta_waf_recomputed_from_interval(self):
        before = DeviceStats()
        before.host_write_pages = 100
        before.copyback_pages = 100
        after = before.copy()
        after.host_write_pages = 200
        after.copyback_pages = 150
        delta = after.delta_since(before)
        # Interval WAF: (100 host + 50 copyback) / 100 host = 1.5.
        assert delta["write_amplification"] == pytest.approx(1.5)

    def test_delta_waf_write_free_interval(self):
        before = DeviceStats()
        after = before.copy()
        assert after.delta_since(before)["write_amplification"] == 0.0


def test_power_cycle_keeps_telemetry(clock):
    telemetry, ssd = telemetry_ssd(clock)
    ssd.write(0, "survives")
    ssd.flush()
    ssd.power_cycle()
    assert ssd.telemetry is telemetry
    assert ssd.read(0) == "survives"
    assert ssd.ftl.telemetry is telemetry


@pytest.fixture
def clock():
    return SimClock()
