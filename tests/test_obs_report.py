"""Tests for the report CLI (repro.tools.report): section rendering and
GC attribution from synthetic telemetry records, plus the end-to-end
JSONL path through main()."""

import json

import pytest

from repro.tools.report import (
    activity_breakdown,
    gc_attribution,
    last_metrics,
    latency_table,
    main,
    render,
    span_summary,
)


def span(name, span_id, parent_id=None, duration_us=10, **attrs):
    return {"type": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id,
            "trace_id": span_id if parent_id is None else 1,
            "start_us": 0, "end_us": duration_us,
            "duration_us": duration_us, "attrs": attrs}


def metrics_record(t_us, metrics):
    return {"type": "metrics", "t_us": t_us, "metrics": metrics}


SYNTHETIC = [
    span("innodb.flush_batch", 1, duration_us=100),
    span("host.pwrite", 2, parent_id=1, duration_us=80),
    span("device.write", 3, parent_id=2, duration_us=60),
    span("ftl.gc", 4, parent_id=3, duration_us=0, copyback_pages=12),
    span("device.write", 5, duration_us=40),
    span("ftl.gc", 6, parent_id=5, duration_us=0, copyback_pages=3),
    metrics_record(1_000, {"device.data.host_write_pages": 10}),
    metrics_record(2_000, {
        "device.data.host_write_pages": 500,
        "device.log.host_write_pages": 100,
        "device.data.host_read_pages": 50,
        "ftl.gc.events": 2,
        "ftl.gc.copyback_pages": 15,
        "device.data.latency_us.write": {
            "count": 500, "total": 50_000.0, "mean": 100.0,
            "p25": 80.0, "p50": 95.0, "p75": 120.0, "p99": 400.0,
            "max": 900.0},
    }),
]


class TestSnapshotSelection:
    def test_last_metrics_wins(self):
        assert last_metrics(SYNTHETIC)["device.data.host_write_pages"] == 500

    def test_no_metrics_gives_empty(self):
        assert last_metrics([span("device.write", 1)]) == {}


class TestActivityBreakdown:
    def test_device_counters_summed_across_scopes(self):
        labels, values = activity_breakdown(last_metrics(SYNTHETIC))
        table = dict(zip(labels, values))
        assert table["host writes (pages)"] == 600  # data 500 + log 100
        assert table["host reads (pages)"] == 50
        assert table["GC events"] == 2
        assert table["GC copybacks (pages)"] == 15
        assert table["wear-level moves"] == 0


class TestLatencyTable:
    def test_histograms_render_as_rows(self):
        text = latency_table(last_metrics(SYNTHETIC))
        assert "device.data.latency_us.write" in text
        assert "P99" in text

    def test_empty_snapshot(self):
        assert "no latency histograms" in latency_table({})

    def test_scalars_and_partial_dicts_skipped(self):
        text = latency_table({"a.counter": 5,
                              "a.partial": {"count": 1, "p50": 2.0}})
        assert "no latency histograms" in text


class TestSpanSummary:
    def test_counts_and_mean(self):
        text = span_summary(SYNTHETIC)
        assert "device.write" in text
        assert "ftl.gc" in text

    def test_no_spans(self):
        assert "no spans" in span_summary([metrics_record(0, {})])


class TestGcAttribution:
    def test_walks_to_root(self):
        counts = gc_attribution(SYNTHETIC)
        assert counts == {"innodb.flush_batch": 1, "device.write": 1}

    def test_orphan_parent_stops_gracefully(self):
        records = [span("ftl.gc", 9, parent_id=999)]
        assert gc_attribution(records) == {"ftl.gc": 1}

    def test_no_gc_spans(self):
        assert gc_attribution([span("device.write", 1)]) == {}


class TestRender:
    def test_all_sections_joined(self):
        text = render(SYNTHETIC)
        assert "I/O activities" in text
        assert "Latency distributions" in text
        assert "Spans by name" in text
        assert "GC attribution" in text

    @pytest.mark.parametrize("section,marker", [
        ("activities", "I/O activities"),
        ("latency", "Latency distributions"),
        ("spans", "Spans by name"),
        ("gc", "GC attribution"),
    ])
    def test_single_section(self, section, marker):
        text = render(SYNTHETIC, section)
        assert marker in text
        others = {"I/O activities", "Latency distributions",
                  "Spans by name", "GC attribution"} - {marker}
        for other in others:
            assert other not in text


class TestMain:
    def test_cli_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            "".join(json.dumps(record) + "\n" for record in SYNTHETIC))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "GC attribution" in out
        assert "innodb.flush_batch" in out

    def test_cli_section_flag(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            "".join(json.dumps(record) + "\n" for record in SYNTHETIC))
        assert main([str(path), "--section", "gc"]) == 0
        assert "Latency" not in capsys.readouterr().out


class TestQueueSection:
    METRICS = [metrics_record(1_000, {
        "device.data.queue.wait_us": {
            "count": 40, "total": 4000.0, "mean": 100.0,
            "p25": 10.0, "p50": 60.0, "p75": 150.0, "p99": 800.0,
            "max": 1200.0},
        "device.data.chan.0.busy_us": 5000,
        "device.data.chan.0.util": 0.71,
        "device.data.chan.1.busy_us": 4500,
        "device.data.chan.1.util": 0.64,
    })]

    def test_queue_section_renders_waits_and_channels(self):
        from repro.tools.report import queue_summary, render_queueing
        metrics = last_metrics(self.METRICS)
        wait_rows, channel_rows = queue_summary(metrics)
        assert wait_rows == [["data", 40, 100.0, 60.0, 150.0, 800.0,
                              1200.0]]
        assert channel_rows == [["data", 0, 5000, 0.71],
                                ["data", 1, 4500, 0.64]]
        text = render_queueing(metrics)
        assert "Queue wait" in text
        assert "Channel occupancy" in text

    def test_queue_section_in_full_render(self):
        text = render(self.METRICS, "queue")
        assert "Channel occupancy" in text
        assert "I/O activities" not in text

    def test_serial_artifact_explains_absence(self):
        from repro.tools.report import render_queueing
        assert "no queueing telemetry" in render_queueing(
            {"device.data.host_write_pages": 5})
