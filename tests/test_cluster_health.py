"""Tests for media-health-driven proactive failover: the weighted
degradation score, the breaker trip it produces, the proactive
promotion the router performs while the sick primary is still serving,
and the ShardMediaStorm fault that drives the whole path in sweeps."""

from repro.cluster import MediaHealthMonitor, ShardGroup, ShardRouter
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.host.resilience import BREAKER_OPEN
from repro.sim.events import EventScheduler
from repro.sim.faults import FaultPlan, ShardKill, ShardMediaStorm
from repro.ssd.device import Ssd, SsdConfig


class FakeDevice:
    """Just enough surface for MediaHealthMonitor.score()."""

    def __init__(self, name, report):
        self.name = name
        self._report = report

    def media_report(self):
        return dict(self._report)


def storm_router(clock, shards=2, threshold=6, cluster_plan=None):
    """Groups whose devices each carry their own FaultPlan (a storm must
    land on one victim, never on the shared NO_FAULTS singleton)."""
    events = EventScheduler(clock)
    geometry = FlashGeometry(page_size=4096, pages_per_block=8,
                             block_count=24, overprovision_ratio=0.25)

    def device(name):
        config = SsdConfig(
            geometry=geometry, timing=FAST_TIMING,
            ftl=FtlConfig(map_block_count=4, share_table_entries=32,
                          spare_block_count=4))
        return Ssd(clock, config, faults=FaultPlan(), name=name,
                   events=events)

    groups = [ShardGroup(f"shard{i}", device(f"s{i}p"),
                         [device(f"s{i}r")]) for i in range(shards)]
    health = MediaHealthMonitor(threshold=threshold, check_every=1)
    router = ShardRouter(
        groups, clock, health=health,
        faults=cluster_plan if cluster_plan is not None else FaultPlan())
    return router, groups


class TestHealthScore:
    def test_score_is_delta_weighted_not_absolute(self):
        monitor = MediaHealthMonitor()
        dev = FakeDevice("d", {"program_fails": 10, "grown_bad_blocks": 5})
        assert monitor.score(dev) == 0        # history is the baseline
        dev._report["program_fails"] += 2     # weight 3
        dev._report["grown_bad_blocks"] += 1  # weight 4
        assert monitor.score(dev) == 3 * 2 + 4 * 1

    def test_spare_exhaustion_is_terminal(self):
        monitor = MediaHealthMonitor(threshold=8)
        dev = FakeDevice("d", {"spare_pool": 2})
        assert monitor.score(dev) == 0
        dev._report["spare_pool"] = 0
        assert monitor.score(dev) >= monitor.threshold

    def test_observe_trips_once_per_device(self, clock):
        router, groups = storm_router(clock, threshold=3)
        group = groups[0]
        monitor = router.health
        monitor.score(group.primary)          # pin the baseline
        # Degrade by lowering the baseline: the delta is what scores.
        monitor._baseline[group.primary.name]["program_fails"] -= 10
        tripped = monitor.observe(group)
        assert tripped
        assert group.guard.breaker.state == BREAKER_OPEN
        assert group.needs_promotion
        assert not monitor.observe(group)     # latched: no re-trip


class TestProactivePromotion:
    def prime(self, router, keys=24):
        for n in range(keys):
            router.put(("k", n), ("v", n))
        router.pump_replication()
        return [("k", n) for n in range(keys)]

    def test_storm_degradation_promotes_before_any_error(self, clock):
        plan = FaultPlan()
        plan.arm_cluster(ShardMediaStorm(nth=4, program_fails=3,
                                         erase_fails=1))
        router, groups = storm_router(clock, cluster_plan=plan)
        keys = self.prime(router)
        # Keep writing: the storm fires at the 4th post-arm ack, the
        # device absorbs the NAND faults (retries + retirement), the
        # health monitor sees the degradation and trips the breaker.
        for round_ in range(30):
            router.put(("w", round_), round_)
            if router.stats.proactive_promotions:
                break
        assert router.stats.media_storms == 1
        assert router.stats.media_trips == 1
        assert router.stats.proactive_promotions == 1
        assert router.stats.kills == 0        # nobody died
        event = router.controller.events[-1]
        assert event.proactive
        victim = router._group(event.shard)
        # The sick ex-primary rejoined as a replica but is held out of
        # the rotation so replication stops burning its spares.
        sick = [rep for rep in victim.replicas
                if rep.ssd.name == event.old_primary]
        assert len(sick) == 1 and sick[0].failed
        # No acked write was lost across the proactive swap.
        for key in keys:
            assert router.get(key) == ("v", key[1])

    def test_kill_promotion_is_not_proactive(self, clock):
        router, groups = storm_router(clock)
        self.prime(router)
        router.kill_shard(groups[0].name)
        router.ensure_healthy()
        event = router.controller.events[-1]
        assert not event.proactive
        assert router.stats.proactive_promotions == 0

    def test_storm_dispatch_targets_round_robin_victims(self, clock):
        """ClusterFaultSet hands the router the fired fault object; the
        router must inject it on the fault's victim, not whoever acked."""
        plan = FaultPlan()
        storm = ShardMediaStorm(nth=2, shard="shard1", program_fails=1,
                                erase_fails=0)
        plan.arm_cluster(storm)
        router, groups = storm_router(clock, cluster_plan=plan)
        devices = {dev.name: dev
                   for group in groups
                   for dev in [group.primary]
                   + [rep.ssd for rep in group.replicas]}
        self.prime(router, keys=8)
        assert storm.fired
        assert storm.victim == "shard1"
        assert router.stats.media_storms == 1
        # The NAND failure landed on shard1's then-primary only; shard0
        # (which acked the triggering write as often as not) is clean.
        assert devices["s1p"].media_report()["nand_failed_programs"] > 0
        assert devices["s0p"].media_report()["nand_failed_programs"] == 0
        assert devices["s0r"].media_report()["nand_failed_programs"] == 0

    def test_kill_fault_still_dispatches_to_kill_path(self, clock):
        plan = FaultPlan()
        plan.arm_cluster(ShardKill(nth=3))
        router, groups = storm_router(clock, cluster_plan=plan)
        self.prime(router, keys=8)
        assert router.stats.kills == 1
        assert router.stats.media_storms == 0
