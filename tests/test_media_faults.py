"""Unit tests for NAND media faults and the FTL's degradation paths.

Covers the chip-level fault model (program/erase failures, transient and
sticky read errors, silent corruption, wear-keyed decay), the FTL's
survival machinery (read-retry, scrubbing, block retirement, spare-pool
backfill, bad-block persistence), the wear accounting the lifespan
argument rests on, and the out-of-space contract when retirements shrink
the device below its live set.
"""

import pytest

from repro.errors import (
    EraseFailError,
    OutOfSpaceError,
    ProgramFailError,
    UncorrectableReadError,
)
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.sim.faults import (
    CORRUPT_PAYLOAD,
    CorruptRead,
    EraseFault,
    FaultPlan,
    ProgramFault,
    ReadDecay,
    ReadFault,
)
from repro.ssd.device import Ssd, SsdConfig


def small_geometry(block_count=16, pages_per_block=8):
    return FlashGeometry(page_size=512, pages_per_block=pages_per_block,
                         block_count=block_count, overprovision_ratio=0.25)


def make_ssd(faults, block_count=16, pages_per_block=8, map_blocks=2,
             spare_blocks=1, **ftl_kwargs):
    config = SsdConfig(
        geometry=small_geometry(block_count, pages_per_block),
        timing=FAST_TIMING,
        ftl=FtlConfig(map_block_count=map_blocks,
                      spare_block_count=spare_blocks,
                      share_table_entries=16, **ftl_kwargs))
    return Ssd(SimClock(), config, faults=faults)


# ------------------------------------------------------------- chip level


class TestNandMediaFaults:
    def setup_method(self):
        self.faults = FaultPlan()
        self.geo = small_geometry()
        self.nand = NandArray(self.geo, faults=self.faults)

    def test_program_fail_consumes_slot_and_page_is_dead(self):
        self.faults.arm_media(ProgramFault(nth=1))
        with pytest.raises(ProgramFailError):
            self.nand.program(0, "doomed", spare=((0, 1),))
        # The slot is consumed: in-order rule continues at the next page.
        assert self.nand.programmed_pages_in_block(0) == 1
        assert self.nand.is_failed(0)
        assert not self.nand.is_programmed(0)
        with pytest.raises(UncorrectableReadError):
            self.nand.read(0)
        # The next program of the block lands on the following page.
        self.nand.program(1, "fine", spare=((1, 2),))
        assert self.nand.read(1) == "fine"
        # The OOB scan skips the failed page (it holds no stamp).
        assert [ppn for ppn, __ in self.nand.scan_block(0)] == [1]
        assert self.nand.failed_programs == 1

    def test_transient_read_fault_clears_after_retry(self):
        self.nand.program(0, "data", spare=((0, 1),))
        self.faults.arm_media(ReadFault(ppn=0, retries_to_clear=1))
        with pytest.raises(UncorrectableReadError):
            self.nand.read(0)
        assert self.nand.read(0) == "data"   # retry succeeds, fault cleared
        assert self.nand.read(0) == "data"
        assert self.nand.failed_reads == 1

    def test_sticky_read_fault_is_a_dead_page(self):
        self.nand.program(0, "data", spare=((0, 1),))
        self.faults.arm_media(ReadFault(ppn=0))
        for __ in range(3):
            with pytest.raises(UncorrectableReadError):
                self.nand.read(0)
        # The spare area is separately protected: OOB still readable.
        assert self.nand.read_spare(0) == ((0, 1),)

    def test_nth_read_fault_binds_to_the_page_it_hits(self):
        self.nand.program(0, "a", spare=((0, 1),))
        self.nand.program(1, "b", spare=((1, 2),))
        fault = ReadFault(nth=2)
        self.faults.arm_media(fault)
        assert self.nand.read(0) == "a"          # read #1: no fire
        with pytest.raises(UncorrectableReadError):
            self.nand.read(1)                    # read #2 fires and binds
        assert fault.location == 1
        assert self.nand.read(0) == "a"          # other pages unaffected
        with pytest.raises(UncorrectableReadError):
            self.nand.read(1)                    # sticky at the bound page

    def test_corrupt_read_returns_garbage_not_error(self):
        self.nand.program(0, "data", spare=((0, 1),))
        self.faults.arm_media(CorruptRead(ppn=0))
        assert self.nand.read(0) == (CORRUPT_PAYLOAD, 0)
        assert self.nand.read(0) == (CORRUPT_PAYLOAD, 0)   # sticky

    def test_erase_fail_leaves_contents_untouched(self):
        self.nand.program(0, "data", spare=((0, 1),))
        self.faults.arm_media(EraseFault(block=0))
        with pytest.raises(EraseFailError):
            self.nand.erase(0)
        assert self.nand.read(0) == "data"
        assert self.nand.erase_counts[0] == 0     # a failed erase is no wear
        assert self.nand.failed_erases == 1
        with pytest.raises(EraseFailError):
            self.nand.erase(0)                    # sticky: block stays bad

    def test_read_decay_keyed_to_erase_counts(self):
        for __ in range(3):
            self.nand.erase(0)
        self.nand.program(0, "worn", spare=((0, 1),))
        self.nand.program(self.geo.first_ppn(1), "fresh", spare=((1, 2),))
        self.faults.arm_media(ReadDecay(erase_threshold=3,
                                        retries_to_clear=1))
        with pytest.raises(UncorrectableReadError):
            self.nand.read(0)                     # worn block: first try fails
        assert self.nand.read(0) == "worn"        # retry succeeds
        assert self.nand.read(self.geo.first_ppn(1)) == "fresh"  # no wear

    def test_op_counting_without_armed_faults(self):
        self.faults.media.enable_counting()
        self.nand.program(0, "x", spare=((0, 1),))
        self.nand.read(0)
        self.nand.read(0)
        self.nand.erase(1)
        assert self.faults.media.op_counts == {"read": 2, "program": 1,
                                               "erase": 1}


class TestWearAccounting:
    """Satellite: erase-count bookkeeping behind the §5.3.1 lifespan metric."""

    def test_wear_summary_fresh_device(self):
        nand = NandArray(small_geometry())
        assert nand.wear_summary() == {"min": 0, "mean": 0.0, "max": 0}
        assert nand.max_erase_count == 0
        assert nand.total_erase_count == 0

    def test_wear_summary_tracks_per_block_erases(self):
        nand = NandArray(small_geometry(block_count=4))
        for __ in range(3):
            nand.erase(0)
        nand.erase(1)
        assert nand.erase_counts == [3, 1, 0, 0]
        summary = nand.wear_summary()
        assert summary["min"] == 0
        assert summary["max"] == 3
        assert summary["mean"] == pytest.approx(1.0)
        assert nand.max_erase_count == 3
        assert nand.total_erase_count == 4

    def test_erase_resets_program_order_and_counts_wear(self):
        nand = NandArray(small_geometry())
        nand.program(0, "a")
        nand.program(1, "b")
        nand.erase(0)
        assert nand.programmed_pages_in_block(0) == 0
        nand.program(0, "again")   # offset 0 valid again post-erase
        assert nand.read(0) == "again"
        assert nand.erase_counts[0] == 1


# -------------------------------------------------------------- FTL level


class TestFtlDegradation:
    def test_read_retry_heals_and_scrubs(self):
        faults = FaultPlan()
        ssd = make_ssd(faults)
        ssd.write(0, "payload")
        ppn = dict(ssd.ftl.fwd.mapped_lpns())[0]
        faults.arm_media(ReadFault(ppn=ppn, retries_to_clear=1))
        assert ssd.read(0) == "payload"
        assert ssd.ftl.stats.read_retries >= 1
        assert ssd.ftl.stats.read_relocations == 1
        assert dict(ssd.ftl.fwd.mapped_lpns())[0] != ppn   # scrubbed away

    def test_scrubbed_shared_page_keeps_every_ref(self):
        faults = FaultPlan()
        ssd = make_ssd(faults)
        ssd.write(0, "shared-payload")
        ssd.share(7, 0, 1)
        ppn = dict(ssd.ftl.fwd.mapped_lpns())[0]
        faults.arm_media(ReadFault(ppn=ppn, retries_to_clear=1))
        assert ssd.read(0) == "shared-payload"
        mapped = dict(ssd.ftl.fwd.mapped_lpns())
        assert mapped[0] == mapped[7] != ppn
        # Copy-safe: both stamps survive an immediate power cycle.
        ssd.power_cycle()
        assert ssd.read(0) == "shared-payload"
        assert ssd.read(7) == "shared-payload"

    def test_uncorrectable_read_surfaces_typed_error(self):
        faults = FaultPlan()
        ssd = make_ssd(faults)
        ssd.write(3, "gone")
        ppn = dict(ssd.ftl.fwd.mapped_lpns())[3]
        faults.arm_media(ReadFault(ppn=ppn))   # sticky dead page
        with pytest.raises(UncorrectableReadError):
            ssd.read(3)
        assert ssd.ftl.stats.uncorrectable_reads >= 1

    def test_program_fail_retires_block_and_loses_nothing(self):
        faults = FaultPlan()
        ssd = make_ssd(faults, spare_blocks=1)
        for lpn in range(10):
            ssd.write(lpn, ("v", lpn))
        assert ssd.ftl.spare_pool_level == 1
        faults.arm_media(
            ProgramFault(nth=faults.media.op_counts["program"] + 1))
        ssd.write(5, "rewritten")
        assert len(ssd.ftl.grown_bad_blocks) == 1
        assert ssd.ftl.spare_pool_level == 0   # spare backfilled the pool
        assert ssd.ftl.stats.program_fails == 1
        assert ssd.read(5) == "rewritten"
        for lpn in range(10):
            if lpn != 5:
                assert ssd.read(lpn) == ("v", lpn)
        report = ssd.media_report()
        assert report["grown_bad_blocks"] == 1
        assert report["nand_failed_programs"] == 1

    def test_grown_bad_block_survives_recovery(self):
        faults = FaultPlan()
        ssd = make_ssd(faults, spare_blocks=1)
        for lpn in range(10):
            ssd.write(lpn, ("v", lpn))
        faults.arm_media(
            ProgramFault(nth=faults.media.op_counts["program"] + 1))
        ssd.write(5, "rewritten")
        bad = ssd.ftl.grown_bad_blocks
        ssd.power_cycle()
        assert ssd.ftl.grown_bad_blocks == bad
        assert ssd.ftl.spare_pool_level == 0
        assert not bad & set(ssd.ftl._free_blocks)
        assert ssd.read(5) == "rewritten"
        for lpn in range(10):
            if lpn != 5:
                assert ssd.read(lpn) == ("v", lpn)
        # And the retirement stays sticky across a second recovery.
        ssd.power_cycle()
        assert ssd.ftl.grown_bad_blocks == bad

    def test_erase_fail_at_gc_retires_the_block(self):
        faults = FaultPlan()
        ssd = make_ssd(faults, spare_blocks=1,
                       gc_low_water=3, gc_high_water=5)
        faults.arm_media(EraseFault(nth=1))   # the first GC erase fails
        span = 24
        for i in range(160):
            ssd.write(i % span, ("churn", i))
        assert ssd.ftl.stats.erase_fails == 1
        assert len(ssd.ftl.grown_bad_blocks) == 1
        for lpn in range(span):
            assert ssd.read(lpn)[0] == "churn"

    def test_corrupt_map_page_detected_by_checksum(self):
        faults = FaultPlan()
        ssd = make_ssd(faults)
        for lpn in range(8):
            ssd.write(lpn, ("v", lpn))
        ssd.share(10, 0, 1)   # force a mapping-log record
        geo = ssd.config.geometry
        map_blocks = range(geo.block_count - 2, geo.block_count)
        map_pages = [geo.first_ppn(b) + off for b in map_blocks
                     for off in range(ssd.nand.programmed_pages_in_block(b))]
        assert map_pages, "workload must have written a map page"
        faults.arm_media(CorruptRead(ppn=map_pages[0]))
        ssd.power_cycle()
        # The checksum catches the garbage instead of trusting it...
        assert ssd.ftl.stats.corrupt_map_pages >= 1
        # ...and recovery still restores every primary mapping from OOB.
        for lpn in range(8):
            assert ssd.read(lpn) == ("v", lpn)


class TestOutOfSpaceUnderRetirement:
    """Satellite: spare-pool exhaustion must surface typed, never loop."""

    def test_retirements_below_live_set_raise_out_of_space(self):
        faults = FaultPlan()
        ssd = make_ssd(faults, spare_blocks=1,
                       gc_low_water=2, gc_high_water=4)
        span = ssd.config.geometry.logical_pages // 2
        for lpn in range(span):
            ssd.write(lpn, ("base", lpn))
        ssd.share(span, 0, 1)   # a populated share table rides along
        ssd.share(span + 1, 1, 1)
        with pytest.raises(OutOfSpaceError):
            # Each iteration retires one more block; the device must give
            # up with the typed error once GC can make no progress, well
            # within this bound (no infinite GC loop).
            for step in range(64):
                faults.arm_media(
                    ProgramFault(nth=faults.media.op_counts["program"] + 1))
                ssd.write(step % span, ("more", step))
        # Acked data on the shrunken device still reads back correctly.
        assert ssd.read(span) == ("base", 0)
