"""Unit tests for page images and torn-write modelling."""

from repro.innodb.page import Page, torn_copy


def test_page_fields():
    page = Page(7, 100, ("payload",))
    assert page.page_id == 7
    assert page.lsn == 100
    assert not page.is_torn()


def test_with_payload_bumps_lsn():
    page = Page(7, 100, "old")
    newer = page.with_payload("new", 200)
    assert newer.payload == "new"
    assert newer.lsn == 200
    assert newer.page_id == 7
    assert page.payload == "old"  # immutable original


def test_torn_copy_fails_checksum():
    page = Page(7, 100, "data")
    torn = torn_copy(page)
    assert torn.is_torn()
    assert torn.page_id == 7
    assert torn.payload != "data"


def test_pages_hashable_and_comparable():
    a = Page(1, 2, "x")
    b = Page(1, 2, "x")
    assert a == b
    assert hash(a) == hash(b)
