"""Unit tests for the crash-consistency explorer itself.

The exhaustive sweeps live in ``test_property_crashcheck.py``; this file
checks the machinery — deterministic enumeration, per-site verdicts,
JSONL report shape, and the CLI entry point.
"""

import json

from repro.crashcheck.explorer import (
    ExplorationReport,
    Occurrence,
    PointResult,
    enumerate_occurrences,
    explore,
    explore_occurrence,
)
from repro.crashcheck.workloads import WORKLOADS
from repro.tools.crashexplore import main as crashexplore_main


class ListSink:
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(dict(record))


def test_enumeration_is_deterministic():
    factory = WORKLOADS["ftl-basic"]
    first = enumerate_occurrences(factory)
    second = enumerate_occurrences(factory)
    assert first == second
    assert len(first) > 50


def test_enumeration_counts_per_point():
    occurrences = enumerate_occurrences(WORKLOADS["ftl-basic"])
    seen = {}
    for occ in occurrences:
        seen[occ.point] = seen.get(occ.point, 0) + 1
        # nth is the running 1-based count of that point.
        assert occ.nth == seen[occ.point]


def test_explore_occurrence_verdict_shape():
    factory = WORKLOADS["ftl-basic"]
    occurrences = enumerate_occurrences(factory)
    result = explore_occurrence(factory, occurrences[0])
    assert isinstance(result, PointResult)
    assert result.point == occurrences[0].point
    assert result.nth == 1
    assert result.crashed
    assert result.ok
    assert result.violations == ()
    assert isinstance(result.recovery_trace, tuple)


def test_explore_emits_jsonl_records():
    factory = WORKLOADS["ftl-basic"]
    sink = ListSink()
    report = explore(factory, "ftl-basic", max_points=5, sink=sink)
    assert isinstance(report, ExplorationReport)
    assert len(report.results) == 5
    assert report.ok
    site_records = [r for r in sink.records if r["type"] == "crashcheck"]
    assert len(site_records) == 5
    for record in site_records:
        assert record["workload"] == "ftl-basic"
        assert record["ok"] is True
        assert record["violations"] == []
        assert isinstance(record["nth"], int)
        json.dumps(record)  # must be serialisable as-is
    summaries = [r for r in sink.records if r["type"] == "crashcheck-summary"]
    assert len(summaries) == 1
    assert summaries[0]["explored"] == 5
    assert summaries[0]["ok"] is True


def test_report_distinct_points_and_failures():
    report = ExplorationReport(
        "w",
        (Occurrence("a", 1), Occurrence("b", 1), Occurrence("a", 2)),
        (PointResult("a", 1, True, (), ()),
         PointResult("b", 1, True, ("broken",), ())),
    )
    assert report.distinct_points == ["a", "b"]
    assert not report.ok
    assert [res.point for res in report.failures] == ["b"]
    assert report.summary()["violations"] == 1


def test_cli_list():
    assert crashexplore_main(["--list"]) == 0


def test_cli_smoke(tmp_path, capsys):
    out = tmp_path / "report.jsonl"
    code = crashexplore_main(["--workload", "ftl-basic",
                              "--max-points", "8", "--out", str(out)])
    assert code == 0
    lines = out.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert sum(1 for r in records if r["type"] == "crashcheck") == 8
    assert records[-1]["type"] == "crashcheck-summary"
    assert records[-1]["ok"] is True
    captured = capsys.readouterr()
    assert "fault-point occurrences" in captured.out
    assert "all invariants held" in captured.out
