"""Unit tests for the media-fault explorer machinery.

The exhaustive sweeps run in CI via ``repro.tools.crashexplore
--media-faults``; this file checks the mechanics — deterministic
operation counting, per-injection verdicts, budget-capped sampling, the
bad-block accounting invariant, and the CLI entry point.
"""

import json

import pytest

from repro.crashcheck.invariants import media_accounting
from repro.crashcheck.mediafaults import (
    ALL_MODES,
    MODE_ERASE_FAIL,
    MODE_POWER_READ,
    MODE_PROGRAM_FAIL,
    MODE_READ_RETRY,
    MODE_UNCORRECTABLE,
    MediaOccurrence,
    MediaReport,
    MediaResult,
    enumerate_media_occurrences,
    enumerate_media_ops,
    explore_media,
    explore_media_occurrence,
)
from repro.crashcheck.workloads import WORKLOADS
from repro.sim.faults import FaultPlan, ProgramFault
from repro.tools.crashexplore import main as crashexplore_main

FACTORY = WORKLOADS["ftl-basic"]

_CACHE = {}


def op_counts():
    if "ops" not in _CACHE:
        _CACHE["ops"] = enumerate_media_ops(FACTORY)
    return _CACHE["ops"]


class ListSink:
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(dict(record))


def test_op_enumeration_is_deterministic_and_covers_all_kinds():
    counts = op_counts()
    assert counts == enumerate_media_ops(FACTORY)
    # The harness must expose every operation kind as sweep targets.
    assert counts["read"] > 0
    assert counts["program"] > 0
    assert counts["erase"] > 0


def test_occurrence_list_spans_modes_and_ops():
    counts = op_counts()
    occurrences = enumerate_media_occurrences(
        FACTORY, (MODE_READ_RETRY, MODE_PROGRAM_FAIL, MODE_ERASE_FAIL),
        op_counts=counts)
    per_mode = {}
    for occ in occurrences:
        per_mode.setdefault(occ.mode, []).append(occ)
    assert len(per_mode[MODE_READ_RETRY]) == counts["read"]
    assert len(per_mode[MODE_PROGRAM_FAIL]) == counts["program"]
    assert len(per_mode[MODE_ERASE_FAIL]) == counts["erase"]
    # nth runs 1..N per mode, in order.
    assert [o.nth for o in per_mode[MODE_ERASE_FAIL]] == \
        list(range(1, counts["erase"] + 1))


def test_power_read_pairs_are_deterministic_and_in_range():
    counts = op_counts()
    first = enumerate_media_occurrences(FACTORY, (MODE_POWER_READ,),
                                        op_counts=counts)
    second = enumerate_media_occurrences(FACTORY, (MODE_POWER_READ,),
                                         op_counts=counts)
    assert first == second
    assert first, "combined mode must produce injection pairs"
    for occ in first:
        assert occ.power_point is not None
        assert occ.power_nth >= 1
        assert 1 <= occ.nth <= counts["read"]


def test_read_retry_injection_verdict():
    result = explore_media_occurrence(
        FACTORY, MediaOccurrence(MODE_READ_RETRY, "read", 1))
    assert isinstance(result, MediaResult)
    assert result.fired
    assert not result.crashed
    assert result.aborted is None   # read-retry heals transient faults
    assert result.ok, result.violations


def test_program_fail_injection_verdict():
    result = explore_media_occurrence(
        FACTORY, MediaOccurrence(MODE_PROGRAM_FAIL, "program", 1))
    assert result.fired
    assert result.ok, result.violations


def test_uncorrectable_injection_typed_or_correct():
    result = explore_media_occurrence(
        FACTORY, MediaOccurrence(MODE_UNCORRECTABLE, "read", 1))
    assert result.fired
    assert result.ok, result.violations


def test_explore_media_caps_by_even_sampling():
    sink = ListSink()
    report = explore_media(FACTORY, "ftl-basic",
                           modes=(MODE_PROGRAM_FAIL,),
                           max_points=4, sink=sink)
    assert isinstance(report, MediaReport)
    assert len(report.results) == 4
    # The cap samples across the occurrence space, not just its head.
    assert max(res.nth for res in report.results) > 4
    assert report.ok
    site_records = [r for r in sink.records if r["type"] == "mediacheck"]
    assert len(site_records) == 4
    for record in site_records:
        assert record["workload"] == "ftl-basic"
        assert record["mode"] == MODE_PROGRAM_FAIL
        assert record["ok"] is True
        json.dumps(record)   # must be serialisable as-is
    summaries = [r for r in sink.records
                 if r["type"] == "mediacheck-summary"]
    assert len(summaries) == 1
    assert summaries[0]["explored"] == 4
    assert summaries[0]["ok"] is True
    assert summaries[0]["op_counts"]["program"] == op_counts()["program"]


def test_media_accounting_flags_bad_bookkeeping():
    faults = FaultPlan()
    harness = FACTORY(faults)
    ssd = harness.ssd
    for lpn in range(8):
        ssd.write(lpn, ("v", lpn))
    # Fail the next data program so a block is retired.
    faults.arm_media(ProgramFault(nth=faults.media.op_counts["program"] + 1))
    ssd.write(4, "rewritten")
    ftl = ssd.ftl
    bad = sorted(ftl.grown_bad_blocks)
    assert bad, "the injected program failure must retire a block"
    assert media_accounting("ftl", ssd) == []
    # Tamper: resurrect the retired block into the free pool.
    ftl._free_blocks.append(bad[0])
    violations = media_accounting("ftl", ssd)
    assert any("free pool" in v for v in violations)


def test_report_failures_and_summary_shape():
    good = MediaResult(MODE_READ_RETRY, "read", 1, None, 0,
                       True, False, None, ())
    bad = MediaResult(MODE_PROGRAM_FAIL, "program", 2, None, 0,
                      True, False, "OutOfSpaceError", ("lost data",))
    report = MediaReport("w", (MODE_READ_RETRY, MODE_PROGRAM_FAIL),
                         {"read": 1, "program": 2, "erase": 0},
                         (), (good, bad))
    assert not report.ok
    assert report.failures == [bad]
    summary = report.summary()
    assert summary["violations"] == 1
    assert summary["aborted"] == 1
    assert summary["ok"] is False


def test_cli_media_smoke(tmp_path, capsys):
    out = tmp_path / "report.jsonl"
    code = crashexplore_main(
        ["--workload", "ftl-basic", "--media-faults",
         "--media-modes", "program-fail,erase-fail",
         "--max-points", "5", "--out", str(out)])
    assert code == 0
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert sum(1 for r in records if r["type"] == "mediacheck") == 5
    assert records[-1]["type"] == "mediacheck-summary"
    assert records[-1]["ok"] is True
    captured = capsys.readouterr()
    assert "media injections" in captured.out
    assert "all invariants held" in captured.out


def test_cli_rejects_unknown_mode(tmp_path):
    code = crashexplore_main(
        ["--workload", "ftl-basic", "--media-faults",
         "--media-modes", "bogus", "--out", str(tmp_path / "r.jsonl")])
    assert code == 2


def test_cli_uncorrectable_needs_ftl_basic(tmp_path):
    code = crashexplore_main(
        ["--workload", "couch-small", "--media-faults",
         "--media-modes", MODE_UNCORRECTABLE,
         "--out", str(tmp_path / "r.jsonl")])
    assert code == 2


def test_all_modes_constant_is_closed():
    assert set(ALL_MODES) == {MODE_READ_RETRY, MODE_PROGRAM_FAIL,
                              MODE_ERASE_FAIL, MODE_UNCORRECTABLE,
                              MODE_POWER_READ}
