"""Satellite property test: the explorer over the mixed workload.

``linkbench-small`` runs InnoDB (SHARE flush mode) and a couchstore on
SHARE-capable devices sized so tight that garbage collection runs *during*
the workload — the paper's hard case, where SHAREd pages, GC copybacks
and power failures interleave.  The sweep must find zero invariant
violations at every reachable fault point.

The full exhaustive sweep runs in CI via ``repro.tools.crashexplore``;
here a deterministic stratified slice plus hypothesis-sampled sites keep
the tier-1 suite fast while still crossing every point family.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crashcheck.explorer import enumerate_occurrences, explore_occurrence
from repro.crashcheck.workloads import WORKLOADS
from repro.sim.faults import FaultPlan

FACTORY = WORKLOADS["linkbench-small"]

_CACHE = {}


def occurrences():
    """Enumerate once per test session (the run is deterministic)."""
    if "occ" not in _CACHE:
        _CACHE["occ"] = enumerate_occurrences(FACTORY)
    return _CACHE["occ"]


def test_enumeration_reaches_all_layers():
    occ = occurrences()
    assert len(occ) >= 100, f"only {len(occ)} fault-point occurrences"
    points = {o.point for o in occ}
    # Couchstore commit AND compaction fault points must be reachable.
    assert "couch.commit_begin" in points
    assert "couch.before_header" in points
    assert "couch.compact_switch" in points
    assert "couch.compact_share" in points
    # InnoDB transaction and device-level points too.
    assert "innodb.txn_durable" in points
    assert any(p.startswith("ftl.") for p in points)
    assert any(p.startswith("maplog.") for p in points)


def test_gc_fires_during_the_workload():
    # The data device is provisioned so small that the mixed workload
    # forces garbage collection while SHAREd pages are live.
    faults = FaultPlan()
    harness = FACTORY(faults)
    harness.run()
    assert harness.data_ssd.ftl.stats.gc_events > 0


def test_stratified_sweep_zero_violations():
    occ = occurrences()
    # Every 23rd site, plus the last one: ~50 injections crossing every
    # phase of the run (txns, commits, compaction, checkpoints).
    sample = list(occ[::23]) + [occ[-1]]
    for site in sample:
        result = explore_occurrence(FACTORY, site)
        assert result.crashed, f"armed fault at {site} never fired"
        assert result.ok, (
            f"invariant violations at {site.point} #{site.nth}: "
            f"{result.violations}")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_random_sites_hold_invariants(data):
    occ = occurrences()
    index = data.draw(st.integers(0, len(occ) - 1), label="occurrence index")
    result = explore_occurrence(FACTORY, occ[index])
    assert result.crashed
    assert result.ok, (
        f"invariant violations at {result.point} #{result.nth}: "
        f"{result.violations}")
