"""Edge-case coverage for the host filesystem: rename chains, reflink of
reflinks, truncate/regrow cycles, and journal wrap-around."""

import pytest

from repro.errors import FileSystemError
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def fs(clock):
    return HostFs(Ssd(clock, small_ssd_config()), FsConfig(journal_blocks=8))


def test_rename_chain(fs):
    f = fs.create("/a")
    f.append_block("payload")
    fs.rename("/a", "/b")
    fs.rename("/b", "/c")
    assert fs.open("/c").pread_block(0) == "payload"
    assert not fs.exists("/a")
    assert not fs.exists("/b")


def test_rename_onto_self(fs):
    f = fs.create("/a")
    f.append_block("x")
    fs.rename("/a", "/a")
    assert fs.open("/a").pread_block(0) == "x"


def test_reflink_of_reflink(fs):
    src = fs.create("/gen0")
    src.append_block("origin")
    fs.reflink_copy("/gen0", "/gen1")
    fs.reflink_copy("/gen1", "/gen2")
    # Three logical files, one physical page.
    for path in ("/gen0", "/gen1", "/gen2"):
        assert fs.open(path).pread_block(0) == "origin"
    # Mutating the middle generation leaves the outer two intact.
    fs.open("/gen1").pwrite_block(0, "mutated")
    assert fs.open("/gen0").pread_block(0) == "origin"
    assert fs.open("/gen2").pread_block(0) == "origin"
    fs.ssd.ftl.check_invariants()


def test_reflink_then_unlink_everything(fs):
    src = fs.create("/src")
    for i in range(5):
        src.append_block(("d", i))
    fs.reflink_copy("/src", "/dst")
    fs.unlink("/src")
    fs.unlink("/dst")
    # All pages released; space is reusable.
    f = fs.create("/fresh")
    f.fallocate(5)
    f.pwrite_blocks(0, ["n"] * 5)
    assert f.pread_block(4) == "n"
    fs.ssd.ftl.check_invariants()


def test_truncate_then_regrow(fs):
    f = fs.create("/f")
    for i in range(6):
        f.append_block(("old", i))
    f.truncate_blocks(2)
    f.fallocate(6)
    f.pwrite_block(5, "regrown")
    assert f.pread_block(0) == ("old", 0)
    assert f.pread_block(5) == "regrown"
    # Truncated blocks read as holes through the device mapping.
    assert not fs.ssd.ftl.is_mapped(f.block_lpn(2))


def test_truncate_negative_rejected(fs):
    f = fs.create("/f")
    with pytest.raises(ValueError):
        f.truncate_blocks(-1)


def test_metadata_journal_wraps(fs):
    # More metadata commits than journal blocks: the circular journal
    # area must keep absorbing them.
    for i in range(30):
        fs.create(f"/file-{i}")
        fs.unlink(f"/file-{i}")
    assert fs.metadata_commits >= 30


def test_operations_on_unlinked_handle_rejected(fs):
    f = fs.create("/f")
    f.append_block("x")
    fs.unlink("/f")
    with pytest.raises(FileSystemError):
        f.append_block("y")
    with pytest.raises(FileSystemError):
        f.fallocate(4)
    with pytest.raises(FileSystemError):
        f.fsync()


def test_pwrite_blocks_across_noncontiguous_extents(fs):
    # Force a non-contiguous file: fresh extent, recycled extent.
    a = fs.create("/a")
    a.fallocate(3)
    fs.unlink("/a")
    b = fs.create("/b")
    b.fallocate(2)          # fresh
    filler = fs.create("/filler")
    filler.fallocate(fs.ssd.logical_pages - fs._alloc_cursor)
    b.fallocate(4)          # must come from the recycled pool
    lpns = [b.block_lpn(i) for i in range(4)]
    assert lpns != sorted(lpns) or lpns[1] + 1 != lpns[2]
    b.pwrite_blocks(0, ["w", "x", "y", "z"])
    assert [b.pread_block(i) for i in range(4)] == ["w", "x", "y", "z"]
