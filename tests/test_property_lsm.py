"""Property-based tests for the LSM store: model equivalence through
flushes and compactions (both modes), and recovery after power cycles."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.lsm import CompactionMode, LsmConfig, LsmStore
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

KEYS = st.integers(0, 60)
VALUES = st.integers(0, 500)

op_strategy = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES),
    st.tuples(st.just("del"), KEYS, st.just(0)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
    st.tuples(st.just("compact"), st.just(0), st.just(0)),
)


def fresh(mode):
    clock = SimClock()
    geo = FlashGeometry(page_size=4096, pages_per_block=64, block_count=256,
                        overprovision_ratio=0.1)
    ssd = Ssd(clock, SsdConfig(geometry=geo, timing=FAST_TIMING,
                               ftl=FtlConfig(map_block_count=12)))
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    store = LsmStore(fs, "db", mode, clock,
                     LsmConfig(memtable_limit=24, l0_limit=2,
                               block_capacity=4))
    return ssd, fs, store


def drive(store, ops, model):
    for kind, key, value in ops:
        if kind == "put":
            store.put(key, ("v", key, value))
            model[key] = ("v", key, value)
        elif kind == "del":
            store.delete(key)
            model.pop(key, None)
        elif kind == "flush":
            store.flush_memtable()
        elif kind == "compact":
            if store.l0 or store.l1 is not None:
                store.compact()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, max_size=120),
       st.sampled_from(list(CompactionMode)))
def test_lsm_matches_dict_through_flush_and_compaction(ops, mode):
    ssd, __, store = fresh(mode)
    model = {}
    drive(store, ops, model)
    assert store.items() == model
    for key in range(61):
        assert store.get(key) == model.get(key)
    ssd.ftl.check_invariants()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=1, max_size=80),
       st.sampled_from(list(CompactionMode)))
def test_lsm_reopen_recovers_committed_state(ops, mode):
    ssd, fs, store = fresh(mode)
    model = {}
    drive(store, ops, model)
    store.commit()           # WAL durability point for memtable tail
    ssd.power_cycle()
    reopened = LsmStore.reopen(fs, "db", mode, store.clock, store.config)
    assert reopened.items() == model
    # Still fully usable.
    reopened.put(999, "post")
    reopened.commit()
    assert reopened.get(999) == "post"
    ssd.ftl.check_invariants()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=1, max_size=60))
def test_both_compaction_modes_agree(ops):
    """COPY and SHARE merges must produce identical logical contents for
    identical inputs."""
    results = []
    for mode in CompactionMode:
        __, __, store = fresh(mode)
        model = {}
        drive(store, ops, model)
        store.flush_memtable()
        if store.l0 or store.l1 is not None:
            store.compact()
        results.append(store.items())
    assert results[0] == results[1]
