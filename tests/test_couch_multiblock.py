"""Couchstore with multi-block documents: exercises the ranged form of
the SHARE command (``share(LPN1, LPN2, length)``) through the engine, as
the paper's length argument intends for documents larger than the FTL
mapping granularity."""

import pytest

from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.ssd.device import Ssd

from conftest import small_ssd_config

DOC_BLOCKS = 3


@pytest.fixture
def stores(clock):
    def make(mode):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        config = CouchConfig(leaf_capacity=4, internal_fanout=8,
                             doc_blocks=DOC_BLOCKS, prealloc_blocks=64)
        return ssd, fs, CouchStore(fs, "/db", mode, config)
    return make


@pytest.mark.parametrize("mode", list(CommitMode))
def test_multiblock_set_get(stores, mode):
    __, __, store = stores(mode)
    store.set("k", {"big": "doc"})
    store.commit()
    assert store.get("k") == {"big": "doc"}


def test_share_update_remaps_whole_range(stores):
    ssd, __, store = stores(CommitMode.SHARE)
    store.set("k", "v1")
    store.commit()
    pairs_before = ssd.stats.share_pairs
    store.set("k", "v2")
    store.commit()
    # One ranged share covering all DOC_BLOCKS pages.
    assert ssd.stats.share_pairs - pairs_before == DOC_BLOCKS
    assert store.get("k") == "v2"
    ssd.ftl.check_invariants()


@pytest.mark.parametrize("mode", list(CommitMode))
def test_multiblock_updates_and_compaction(stores, mode, clock):
    ssd, fs, store = stores(mode)
    for key in range(20):
        store.set(key, ("v0", key))
    store.commit()
    for round_number in (1, 2):
        for key in range(0, 20, 2):
            store.set(key, (f"v{round_number}", key))
        store.commit()
    new_store, result = compact(store, clock)
    assert result.docs_moved == 20
    for key in range(20):
        expected = ("v2", key) if key % 2 == 0 else ("v0", key)
        assert new_store.get(key) == expected
    ssd.ftl.check_invariants()


def test_multiblock_share_compaction_shares_all_blocks(stores, clock):
    ssd, __, store = stores(CommitMode.SHARE)
    for key in range(12):
        store.set(key, ("doc", key))
    store.commit()
    ssd.reset_measurement()
    new_store, result = compact(store, clock)
    # Every document page moved by remap: 12 docs x 3 blocks.
    assert ssd.stats.share_pairs == 12 * DOC_BLOCKS
    assert result.docs_moved == 12


@pytest.mark.parametrize("mode", list(CommitMode))
def test_multiblock_reopen(stores, mode):
    ssd, fs, store = stores(mode)
    for key in range(10):
        store.set(key, ("v", key))
    store.commit()
    store.set(3, "updated")
    store.commit()
    ssd.power_cycle()
    reopened = CouchStore.reopen(fs, "/db", mode, store.config)
    assert reopened.get(3) == "updated"
    assert reopened.get(7) == ("v", 7)
