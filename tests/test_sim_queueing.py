"""Unit tests for the closed-loop queueing model."""

import pytest

from repro.sim.queueing import ClosedLoopQueue


def test_single_client_has_no_wait():
    queue = ClosedLoopQueue(1)
    first = queue.submit(10.0)
    second = queue.submit(5.0)
    assert first.wait_us == 0.0
    assert second.wait_us == 0.0
    assert second.response_us == 5.0
    assert queue.makespan_us == 15.0


def test_two_clients_queue_behind_each_other():
    queue = ClosedLoopQueue(2)
    a = queue.submit(10.0)   # client 0: starts at 0, done at 10
    b = queue.submit(10.0)   # client 1: arrives 0, waits 10, done 20
    assert a.response_us == 10.0
    assert b.wait_us == 10.0
    assert b.response_us == 20.0


def test_steady_state_response_is_n_times_service():
    clients = 8
    queue = ClosedLoopQueue(clients)
    last = None
    for __ in range(200):
        last = queue.submit(1.0)
    # With uniform service, every client waits behind the other N-1.
    assert last.response_us == pytest.approx(clients * 1.0)


def test_makespan_equals_total_service():
    """Zero think time: the server never idles after startup, so the
    makespan equals the sum of services — throughput is unchanged by
    the client count."""
    queue = ClosedLoopQueue(5)
    total = 0.0
    for service in (3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0):
        queue.submit(service)
        total += service
    assert queue.makespan_us == pytest.approx(total)


def test_burst_inflates_followers_latency():
    """A long (GC-stalled) operation delays every queued client — the
    mechanism behind the paper's Table 1 read tails."""
    queue = ClosedLoopQueue(4)
    for __ in range(8):
        queue.submit(1.0)
    queue.submit(100.0)          # the GC burst
    follower = queue.submit(1.0)
    assert follower.response_us > 100.0


def test_round_robin_client_assignment():
    queue = ClosedLoopQueue(3)
    completions = [queue.submit(1.0) for __ in range(6)]
    assert [c.client for c in completions] == [0, 1, 2, 0, 1, 2]


def test_validation():
    with pytest.raises(ValueError):
        ClosedLoopQueue(0)
    with pytest.raises(ValueError):
        ClosedLoopQueue(2).submit(-1.0)


# ---------------------------------------------------------------------------
# Oracle equivalence: the analytic closed-loop queue is kept as an
# independent model of the event-driven device.  At one channel, queue
# depth 1 and FIFO admission the device must reproduce the oracle's
# response times *exactly* on the same service stream — the proof that
# the event-driven refactor is a strict generalization of the serial
# model, not a reimplementation that happens to be close.
# ---------------------------------------------------------------------------


def _build_device():
    from repro.flash.geometry import FlashGeometry
    from repro.flash.timing import FAST_TIMING
    from repro.ftl.config import FtlConfig
    from repro.sim.clock import SimClock
    from repro.ssd.device import Ssd, SsdConfig

    clock = SimClock()
    ssd = Ssd(clock, SsdConfig(
        geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                               block_count=48),
        timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4)))
    return clock, ssd


def _op_stream(count=240, seed=11):
    import random

    rng = random.Random(seed)
    ops = []
    for step in range(count):
        roll = rng.random()
        if roll < 0.75:
            ops.append(("write", rng.randrange(64), ("v", step)))
        elif roll < 0.9:
            ops.append(("read", rng.randrange(64), None))
        else:
            ops.append(("flush", 0, None))
    return ops


def _run_op(ssd, op):
    kind, lpn, value = op
    if kind == "write":
        ssd.write(lpn, value)
    elif kind == "read":
        try:
            ssd.read(lpn)
        except Exception:
            ssd.write(lpn, ("seed", lpn))   # unmapped: write instead
    else:
        ssd.flush()


def test_event_device_qd1_reproduces_closed_loop_oracle():
    clients = 4
    ops = _op_stream()

    # Serial measurement feeding the analytic oracle.
    clock, ssd = _build_device()
    queue = ClosedLoopQueue(clients)
    oracle = []
    for op in ops:
        start = clock.now_us
        _run_op(ssd, op)
        oracle.append(queue.submit(clock.now_us - start))

    # The same stream through real sessions on an identical device.
    from repro.ssd.ncq import DeviceSession, issuing

    clock2, ssd2 = _build_device()
    sessions = [DeviceSession(client, 0) for client in range(clients)]
    responses = []
    for index, op in enumerate(ops):
        session = sessions[index % clients]
        arrival = session.now_us
        with issuing(session, ssd2):
            _run_op(ssd2, op)
        responses.append(session.now_us - arrival)
        ssd2.poll(session.now_us)
    ssd2.drain()

    assert responses == [completion.response_us for completion in oracle]
    assert clock2.now_us == queue.makespan_us
    assert clock2.now_us == clock.now_us


def test_oracle_equivalence_holds_for_any_client_count():
    for clients in (1, 2, 3, 8, 16):
        ops = _op_stream(count=120, seed=100 + clients)
        clock, ssd = _build_device()
        queue = ClosedLoopQueue(clients)
        oracle = []
        for op in ops:
            start = clock.now_us
            _run_op(ssd, op)
            oracle.append(queue.submit(clock.now_us - start))

        from repro.ssd.ncq import DeviceSession, issuing

        clock2, ssd2 = _build_device()
        sessions = [DeviceSession(client, 0) for client in range(clients)]
        responses = []
        for index, op in enumerate(ops):
            session = sessions[index % clients]
            arrival = session.now_us
            with issuing(session, ssd2):
                _run_op(ssd2, op)
            responses.append(session.now_us - arrival)
            ssd2.poll(session.now_us)
        ssd2.drain()
        assert responses == [c.response_us for c in oracle], clients
