"""Unit tests for the closed-loop queueing model."""

import pytest

from repro.sim.queueing import ClosedLoopQueue


def test_single_client_has_no_wait():
    queue = ClosedLoopQueue(1)
    first = queue.submit(10.0)
    second = queue.submit(5.0)
    assert first.wait_us == 0.0
    assert second.wait_us == 0.0
    assert second.response_us == 5.0
    assert queue.makespan_us == 15.0


def test_two_clients_queue_behind_each_other():
    queue = ClosedLoopQueue(2)
    a = queue.submit(10.0)   # client 0: starts at 0, done at 10
    b = queue.submit(10.0)   # client 1: arrives 0, waits 10, done 20
    assert a.response_us == 10.0
    assert b.wait_us == 10.0
    assert b.response_us == 20.0


def test_steady_state_response_is_n_times_service():
    clients = 8
    queue = ClosedLoopQueue(clients)
    last = None
    for __ in range(200):
        last = queue.submit(1.0)
    # With uniform service, every client waits behind the other N-1.
    assert last.response_us == pytest.approx(clients * 1.0)


def test_makespan_equals_total_service():
    """Zero think time: the server never idles after startup, so the
    makespan equals the sum of services — throughput is unchanged by
    the client count."""
    queue = ClosedLoopQueue(5)
    total = 0.0
    for service in (3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0):
        queue.submit(service)
        total += service
    assert queue.makespan_us == pytest.approx(total)


def test_burst_inflates_followers_latency():
    """A long (GC-stalled) operation delays every queued client — the
    mechanism behind the paper's Table 1 read tails."""
    queue = ClosedLoopQueue(4)
    for __ in range(8):
        queue.submit(1.0)
    queue.submit(100.0)          # the GC burst
    follower = queue.submit(1.0)
    assert follower.response_us > 100.0


def test_round_robin_client_assignment():
    queue = ClosedLoopQueue(3)
    completions = [queue.submit(1.0) for __ in range(6)]
    assert [c.client for c in completions] == [0, 1, 2, 0, 1, 2]


def test_validation():
    with pytest.raises(ValueError):
        ClosedLoopQueue(0)
    with pytest.raises(ValueError):
        ClosedLoopQueue(2).submit(-1.0)
