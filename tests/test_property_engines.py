"""Property-based tests at the engine level: InnoDB transactions and the
SQLite-like database must match dict models under random operation
sequences, in every mode, including across crash + recovery."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.innodb.recovery import recover
from repro.sim.clock import SimClock
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.ssd.device import Ssd, SsdConfig

KEYS = st.integers(0, 120)
VALUES = st.integers(0, 5000)

op_strategy = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES),
    st.tuples(st.just("delete"), KEYS, st.just(0)),
)
txn_strategy = st.lists(op_strategy, min_size=1, max_size=6)


def make_innodb(mode):
    clock = SimClock()
    geo = FlashGeometry(page_size=4096, pages_per_block=64, block_count=256,
                        overprovision_ratio=0.1)
    data = Ssd(clock, SsdConfig(geometry=geo, timing=FAST_TIMING,
                                ftl=FtlConfig()))
    log = Ssd(clock, SsdConfig(geometry=FlashGeometry(
        page_size=4096, pages_per_block=64, block_count=256),
        timing=FAST_TIMING, share_enabled=False))
    engine = InnoDBEngine(mode, data, log, InnoDBConfig(
        buffer_pool_pages=16, flush_batch_pages=8, leaf_capacity=4,
        internal_fanout=4))
    engine.create_table("t")
    return data, log, engine


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(txn_strategy, max_size=20),
       st.sampled_from(list(FlushMode)))
def test_innodb_matches_dict(transactions, mode):
    __, __, engine = make_innodb(mode)
    model = {}
    for ops in transactions:
        with engine.transaction() as txn:
            for kind, key, value in ops:
                if kind == "put":
                    txn.put("t", key, value)
                    model[key] = value
                else:
                    txn.delete("t", key)
                    model.pop(key, None)
    for key in range(121):
        with engine.transaction() as txn:
            assert txn.get("t", key) == model.get(key)
    assert sorted(model.items()) == list(engine.table("t").items())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(txn_strategy, min_size=1, max_size=12),
       st.sampled_from([FlushMode.DWB_ON, FlushMode.SHARE,
                        FlushMode.ATOMIC_WRITE]))
def test_innodb_recovery_matches_dict(transactions, mode):
    data, log, engine = make_innodb(mode)
    model = {}
    for ops in transactions:
        with engine.transaction() as txn:
            for kind, key, value in ops:
                if kind == "put":
                    txn.put("t", key, value)
                    model[key] = value
                else:
                    txn.delete("t", key)
                    model.pop(key, None)
    recovered, report = recover(mode, data, log)
    assert report.clean
    for key in range(121):
        assert recovered.table("t").get(key) == model.get(key)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(txn_strategy, max_size=12),
       st.sampled_from(list(JournalMode)))
def test_sqlitelike_matches_dict(transactions, mode):
    clock = SimClock()
    fs = HostFs(Ssd(clock, SsdConfig(
        geometry=FlashGeometry(page_size=4096, pages_per_block=64,
                               block_count=256, overprovision_ratio=0.1),
        timing=FAST_TIMING)), FsConfig(journal_blocks=8))
    db = SqliteLikeDb(fs, "/p.db", mode, page_count=2048,
                      leaf_capacity=4, internal_fanout=4)
    model = {}
    for ops in transactions:
        with db.transaction():
            for kind, key, value in ops:
                if kind == "put":
                    db.put(key, value)
                    model[key] = value
                else:
                    db.delete(key)
                    model.pop(key, None)
    for key in range(121):
        assert db.get(key) == model.get(key)
    assert sorted(model.items()) == list(db.items())


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(txn_strategy, min_size=1, max_size=8),
       st.sampled_from(list(JournalMode)))
def test_sqlitelike_reopen_matches_dict(transactions, mode):
    clock = SimClock()
    ssd = Ssd(clock, SsdConfig(
        geometry=FlashGeometry(page_size=4096, pages_per_block=64,
                               block_count=256, overprovision_ratio=0.1),
        timing=FAST_TIMING))
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    db = SqliteLikeDb(fs, "/p.db", mode, page_count=2048,
                      leaf_capacity=4, internal_fanout=4)
    model = {}
    for ops in transactions:
        with db.transaction():
            for kind, key, value in ops:
                if kind == "put":
                    db.put(key, value)
                    model[key] = value
                else:
                    db.delete(key)
                    model.pop(key, None)
    ssd.power_cycle()
    reopened = SqliteLikeDb.open(fs, "/p.db", mode, page_count=2048)
    for key in range(121):
        assert reopened.get(key) == model.get(key)
