"""Edge-case coverage for the smaller utility surfaces: device stats,
I/O trace, report formatting, error hierarchy, and timing validation."""

import pytest

from repro import errors
from repro.bench.report import format_ratio_line, format_series, format_table
from repro.flash.timing import FAST_TIMING, FlashTiming
from repro.ssd.stats import DeviceStats
from repro.ssd.trace import IoTrace, TraceEvent


class TestDeviceStats:
    def test_waf_zero_without_writes(self):
        assert DeviceStats().write_amplification == 0.0

    def test_total_nand_programs(self):
        stats = DeviceStats()
        stats.host_write_pages = 10
        stats.copyback_pages = 5
        stats.map_page_writes = 2
        stats.share_spill_pages = 1
        assert stats.total_nand_programs == 18
        assert stats.write_amplification == pytest.approx(1.8)

    def test_bytes_properties(self):
        stats = DeviceStats(page_size=4096)
        stats.host_write_pages = 3
        stats.host_read_pages = 2
        assert stats.host_written_bytes == 3 * 4096
        assert stats.host_read_bytes == 2 * 4096

    def test_copy_is_independent(self):
        stats = DeviceStats()
        stats.host_write_pages = 5
        stats.extra["x"] = 1
        clone = stats.copy()
        stats.host_write_pages = 99
        stats.extra["x"] = 99
        assert clone.host_write_pages == 5
        assert clone.extra["x"] == 1

    def test_delta_since(self):
        before = DeviceStats()
        after = DeviceStats()
        after.host_write_pages = 7
        delta = after.delta_since(before)
        assert delta["host_write_pages"] == 7

    def test_snapshot_includes_extra(self):
        stats = DeviceStats()
        stats.extra["custom"] = 3
        assert stats.snapshot()["custom"] == 3


class TestIoTrace:
    def event(self, kind="write", latency=10.0):
        return TraceEvent(timestamp_us=0, kind=kind, lpn=0, count=1,
                          latency_us=latency)

    def test_filtering_by_kind(self):
        trace = IoTrace(10)
        trace.record(self.event("write"))
        trace.record(self.event("read"))
        assert len(trace.events("write")) == 1
        assert len(trace.events()) == 2

    def test_max_latency(self):
        trace = IoTrace(10)
        trace.record(self.event(latency=5.0))
        trace.record(self.event(latency=50.0))
        assert trace.max_latency_us() == 50.0

    def test_max_latency_empty_raises(self):
        with pytest.raises(ValueError):
            IoTrace(10).max_latency_us()

    def test_clear(self):
        trace = IoTrace(1)
        trace.record(self.event())
        trace.record(self.event())
        assert trace.dropped == 1
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            IoTrace(-1)


class TestReportFormatting:
    def test_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.234], ["bb", 123.456]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_series(self):
        text = format_series("fig", "x", [1, 2],
                             {"s1": [10.0, 20.0], "s2": [1.0, 2.0]})
        assert "fig" in text
        assert "s1" in text and "s2" in text

    def test_ratio_line_both_directions(self):
        assert "2.00x" in format_ratio_line("t", 10.0, 5.0)
        assert "2.00x" in format_ratio_line("t", 5.0, 10.0)
        assert "n/a" in format_ratio_line("t", 5.0, 0.0)


class TestTimingValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FlashTiming(read_us=-1.0)

    def test_latency_helpers_scale_with_size(self):
        t = FAST_TIMING
        assert t.read_latency(8192) > t.read_latency(4096)
        assert t.program_latency(8192) > t.program_latency(4096)


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or \
                    obj is errors.ReproError

    def test_specific_parents(self):
        assert issubclass(errors.ShareError, errors.FtlError)
        assert issubclass(errors.OutOfSpaceError, errors.FtlError)
        assert issubclass(errors.FileNotFound, errors.FileSystemError)
        assert issubclass(errors.TornPageError, errors.EngineError)
