"""Tests for the R-replica ShardGroup: write-quorum acks (and the
degraded primary-only mode), read-your-writes replica routing with the
LPN-recycling fence, transient-vs-terminal replica apply errors, and
the router's round-robin pump fairness across groups."""

import pytest

from repro.cluster import Replica, ShardGroup, ShardRouter
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.faults import DeviceBusy, FaultPlan, ProgramFault
from repro.ssd.device import Ssd, SsdConfig
from repro.ftl.config import FtlConfig
from repro.flash.geometry import FlashGeometry
from repro.ssd.ncq import DeviceSession

from conftest import small_ssd_config


def make_group(clock, replicas=2, write_quorum=1, replica_plans=None,
               replica_retry_limit=4):
    """One ShardGroup; ``replica_plans[i]`` arms faults on replica i."""
    events = EventScheduler(clock)
    primary = Ssd(clock, small_ssd_config(), name="p", events=events)
    reps = []
    for index in range(replicas):
        plan = (replica_plans or {}).get(index)
        config = small_ssd_config()
        if replica_retry_limit != 4:
            geometry = FlashGeometry.small()
            config = SsdConfig(
                geometry=geometry, timing=config.timing,
                ftl=FtlConfig(map_block_count=4, share_table_entries=250,
                              program_retry_limit=replica_retry_limit))
        reps.append(Ssd(clock, config, name=f"r{index}", events=events,
                        faults=plan if plan is not None else FaultPlan()))
    return ShardGroup("shard0", primary, reps, write_quorum=write_quorum)


class TestWriteQuorum:
    def test_quorum_ack_syncs_a_replica(self, clock):
        group = make_group(clock, replicas=2, write_quorum=2)
        for n in range(5):
            record = group.put(("k", n), ("v", n))
            # The ack means a quorum holds the record *now*, not later.
            holders = 1 + sum(rep.applier.watermark >= record.seq
                              for rep in group.replicas)
            assert holders >= 2
        assert group.quorum_syncs > 0
        assert group.quorum_degraded == 0

    def test_quorum_syncs_most_caught_up_replica_first(self, clock):
        group = make_group(clock, replicas=2, write_quorum=2)
        group.put(("k", 0), "a")
        # Quorum pulls one replica forward; the other stays behind until
        # a pump — the sync targets the least work, not every replica.
        marks = sorted(rep.applier.watermark for rep in group.replicas)
        assert marks == [0, 1]

    def test_all_replicas_failed_degrades_to_primary_only(self, clock):
        group = make_group(clock, replicas=2, write_quorum=2)
        for rep in group.replicas:
            rep.failed = True
        record = group.put(("k", 0), "a")
        assert record is not None                    # still acked
        assert group.get(("k", 0)) == "a"
        assert group.quorum_degraded == 1

    def test_quorum_validation(self, clock):
        with pytest.raises(ValueError):
            make_group(clock, replicas=1, write_quorum=3)
        with pytest.raises(ValueError):
            make_group(clock, replicas=1, write_quorum=0)


class TestReplicaReads:
    def test_caught_up_replica_serves_the_read(self, clock):
        group = make_group(clock, replicas=2)
        record = group.put(("k", 0), "a")
        group.pump_replication()
        value = group.get(("k", 0), min_seq=record.seq)
        assert value == "a"
        assert group.replica_reads == 1

    def test_lagging_replicas_leave_the_read_on_the_primary(self, clock):
        group = make_group(clock, replicas=2)
        record = group.put(("k", 0), "a")        # no pump: replicas at 0
        assert group.get(("k", 0), min_seq=record.seq) == "a"
        assert group.replica_reads == 0
        assert group.replica_read_fallbacks == 0

    def test_entry_seq_fences_recycled_lpns(self, clock):
        """Delete then re-put reuses the LPN; a replica that applied the
        old write but not the recycle must not serve the stale bytes."""
        group = make_group(clock, replicas=1)
        group.put(("k", 0), "old")
        group.pump_replication()                  # replica holds "old"
        group.delete(("k", 0))
        group.put(("k", 1), "new")                # recycles the LPN
        assert group.directory[("k", 1)] == 0
        # min_seq 0, but the entry fence still forces the primary.
        assert group.get(("k", 1)) == "new"
        assert group.replica_reads == 0

    def test_failed_replica_is_skipped(self, clock):
        group = make_group(clock, replicas=2)
        group.put(("k", 0), "a")
        group.pump_replication()
        group.mark_replica_failed("r0")
        for __ in range(4):
            assert group.get(("k", 0)) == "a"
        assert group.replica_reads == 4
        assert group.replica_drops == 1

    def test_rejoin_restores_replica_service(self, clock):
        group = make_group(clock, replicas=1)
        group.put(("k", 0), "a")
        group.pump_replication()
        demoted = group.replicas[0].ssd
        group.replicas.clear()
        rep = group.rejoin(demoted)
        assert isinstance(rep, Replica)
        assert rep.applier.watermark == 0          # fresh applier
        group.pump_replication()                   # idempotent replay
        assert group.get(("k", 0)) == "a"
        assert group.replica_reads == 1


class TestReplicaApplyErrors:
    def test_transient_busy_keeps_replica_in_rotation(self, clock):
        plan = FaultPlan()
        plan.arm_command(DeviceBusy("write", nth=1, clears_after=1))
        group = make_group(clock, replicas=1, replica_plans={0: plan})
        group.put(("k", 0), "a")
        assert group.pump_replication() == 0       # busy rejected it
        rep = group.replicas[0]
        assert not rep.failed                      # transient: no drop
        assert group.replica_drops == 0
        assert group.pump_replication() == 1       # retried and applied
        assert rep.applier.watermark == 1

    def test_media_error_drops_the_replica(self, clock):
        plan = FaultPlan()
        # retry limit 1 + back-to-back program failures: the replica's
        # write comes back as a host-visible MediaError.
        for nth in range(1, 4):
            plan.arm_media(ProgramFault(nth=nth))
        group = make_group(clock, replicas=1, replica_plans={0: plan},
                           replica_retry_limit=1)
        group.put(("k", 0), "a")
        group.pump_replication()
        rep = group.replicas[0]
        assert rep.failed
        assert group.replica_drops == 1
        assert group.live_replicas() == []
        # The group still serves from the primary.
        assert group.get(("k", 0)) == "a"


class TestPumpFairness:
    def make_two_shard_router(self, clock):
        events = EventScheduler(clock)

        def device(name):
            return Ssd(clock, small_ssd_config(), name=name, events=events)

        groups = [ShardGroup(f"shard{i}", device(f"s{i}p"),
                             [device(f"s{i}r")]) for i in range(2)]
        return ShardRouter(groups, clock), groups

    def test_round_robin_pump_shares_the_budget(self, clock):
        """A hot shard's backlog must not starve the other group: a
        limited pump spends its budget one record per group per turn."""
        router, groups = self.make_two_shard_router(clock)
        hot, cold = groups
        for n in range(20):
            hot.put(("h", n), n)
        for n in range(6):
            cold.put(("c", n), n)
        applied = router.pump_replication(limit=12)
        assert applied == 12
        # Fair split: the cold group drains fully (6), the hot group
        # gets the remaining budget (6) — not 12-and-0.
        assert cold.replicas[0].applier.watermark == 6
        assert hot.replicas[0].applier.watermark == 6

    def test_pump_cursor_rotates_across_calls(self, clock):
        """With budget 1 per call, consecutive calls serve *different*
        groups instead of re-draining whichever sorts first."""
        router, groups = self.make_two_shard_router(clock)
        for group in groups:
            for n in range(3):
                group.put(("k", n), n)
        served = []
        for __ in range(4):
            before = [g.replicas[0].applier.watermark for g in groups]
            assert router.pump_replication(limit=1) == 1
            after = [g.replicas[0].applier.watermark for g in groups]
            served.append(after[0] - before[0])    # 1 iff group0 served
        assert 0 < sum(served) < 4                 # both groups served

    def test_unlimited_pump_drains_everything(self, clock):
        router, groups = self.make_two_shard_router(clock)
        for group in groups:
            for n in range(5):
                group.put(("k", n), n)
        router.pump_replication()
        for group in groups:
            assert group.repl_lag == 0


class TestRouterReadYourWrites:
    def make_router(self, clock, shards=2, replicas=2):
        events = EventScheduler(clock)

        def device(name):
            return Ssd(clock, small_ssd_config(), name=name, events=events)

        groups = [ShardGroup(f"shard{i}", device(f"s{i}p"),
                             [device(f"s{i}r{j}") for j in range(replicas)])
                  for i in range(shards)]
        return ShardRouter(groups, clock), events

    def test_writer_sees_own_write_before_any_pump(self, clock):
        router, events = self.make_router(clock)
        session = DeviceSession(1, 0)
        router.use_session(session)
        for n in range(10):
            router.put(("k", n), ("v", n))
            events.run_until(session.now_us)
            assert router.get(("k", n)) == ("v", n)
            events.run_until(session.now_us)
        # Nothing was pumped, so no replica could legally serve these.
        assert router.stats.replica_reads == 0

    def test_other_client_may_read_from_replica(self, clock):
        router, events = self.make_router(clock)
        writer, reader = DeviceSession(1, 0), DeviceSession(2, 0)
        router.use_session(writer)
        router.put(("k", 0), "a")
        events.run_until(writer.now_us)
        router.use_session(None)
        router.pump_replication()
        router.use_session(reader)
        assert router.get(("k", 0)) == "a"
        events.run_until(reader.now_us)
        assert router.stats.replica_reads == 1
