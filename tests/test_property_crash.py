"""Property-based crash testing: power may fail at ANY instrumented point
during a random operation stream; after recovery the device must expose a
consistent prefix of the durable history.

Consistency contract checked — the STRICT version, keyed off the fault
plan's ack-boundary journal:
* every operation that acknowledged (returned to the caller) is durable:
  its LPNs read back exactly their acknowledged values — no exceptions,
* only the single operation the plan recorded as unacknowledged
  (:meth:`FaultPlan.unacked_op`) may be ambiguous, and only on its own
  LPNs: power may have failed after the media work but before completion
  reached the caller, so its effect may have landed or not,
* an LPN under an interrupted trim may read its old value or be unmapped
  — but ONLY when the trim is the recorded unacked op, never because a
  trim merely happened nearby,
* SHARE batches are all-or-nothing.

(Acked trims are buffered until a flush barrier, like real TRIM + FLUSH,
so the model simply stops asserting about an LPN once its trim acks.)
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import PowerFailure, ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import SharePair
from repro.sim.faults import FaultPlan, PowerFailAfter

SPAN = 48

FAULT_POINTS = (
    "ftl.before_program",
    "ftl.after_program",
    "maplog.before_commit",
    "maplog.after_commit",
    "maplog.checkpoint_start",
    "maplog.checkpoint_end",
    # The ack boundary itself: media work done, completion never returned.
    "ftl.write.ack",
    "ftl.share.ack",
    "ftl.trim.ack",
    "ftl.flush.ack",
)

op_strategy = st.one_of(
    st.tuples(st.just("write"), st.integers(0, SPAN - 1),
              st.integers(0, 999)),
    st.tuples(st.just("share"), st.integers(0, SPAN - 1),
              st.integers(0, SPAN - 1)),
    st.tuples(st.just("batch"), st.integers(0, SPAN - 5),
              st.integers(1, 4)),
    st.tuples(st.just("trim"), st.integers(0, SPAN - 1), st.just(0)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
)


def fresh(faults):
    geo = FlashGeometry(page_size=4096, pages_per_block=16, block_count=40,
                        overprovision_ratio=0.2)
    nand = NandArray(geo)
    config = FtlConfig(map_block_count=4, share_table_entries=8)
    return nand, config, PageMappingFtl(nand, config, faults)


#: Sentinel for "the in-flight op was a trim of this LPN".
TRIMMED = object()


def run_stream(ftl, ops, committed, durable_writes, inflight=None):
    """Apply ops; ``committed`` mirrors the logical state after each
    *completed* operation; ``durable_writes`` records ops whose durability
    is promised at return (writes, shares).  ``inflight`` — if given —
    holds, at any moment, the effect the *current* op would have per LPN
    (a value, or ``TRIMMED``); when a crash interrupts the stream it is
    left describing exactly the op whose landing is ambiguous."""
    if inflight is None:
        inflight = {}
    for op in ops:
        kind, a, b = op
        inflight.clear()
        if kind == "write":
            inflight[a] = ("v", a, b)
            ftl.write(a, ("v", a, b))
            committed[a] = ("v", a, b)
            durable_writes[a] = ("v", a, b)
        elif kind == "share":
            if a == b:
                continue
            if b in committed:
                inflight[a] = committed[b]
            try:
                ftl.share(a, b)
            except ShareError:
                inflight.clear()
                continue
            committed[a] = committed[b]
            durable_writes[a] = committed[b]
        elif kind == "batch":
            sources = [lpn for lpn in range(SPAN)
                       if lpn in committed
                       and not a <= lpn < a + b]
            if len(sources) < b:
                continue
            pairs = [SharePair(a + i, sources[i]) for i in range(b)]
            for pair in pairs:
                inflight[pair.dst_lpn] = committed[pair.src_lpn]
            try:
                ftl.share_batch(pairs)
            except ShareError:
                inflight.clear()
                continue
            for pair in pairs:
                committed[pair.dst_lpn] = committed[pair.src_lpn]
                durable_writes[pair.dst_lpn] = committed[pair.src_lpn]
        elif kind == "trim":
            inflight[a] = TRIMMED
            ftl.trim(a)
            committed.pop(a, None)
            durable_writes.pop(a, None)
        elif kind == "flush":
            ftl.flush()
    inflight.clear()


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=5, max_size=60),
       st.sampled_from(FAULT_POINTS),
       st.integers(1, 25))
def test_crash_anywhere_recovers_consistently(ops, fault_point, nth):
    faults = FaultPlan()
    nand, config, ftl = fresh(faults)
    committed = {}
    durable = {}
    faults.arm(PowerFailAfter(fault_point, nth=nth))
    crashed = False
    inflight = {}
    try:
        run_stream(ftl, ops, committed, durable, inflight)
    except PowerFailure:
        crashed = True
    recovered = PageMappingFtl.recover(nand, config)
    recovered.check_invariants()
    # The ack journal is authoritative about which operation (if any) is
    # ambiguous: every instrumented point fires inside an operation
    # scope, so a crash always names its victim.
    unacked = faults.unacked_op()
    if crashed:
        assert unacked is not None, (
            f"crash at {fault_point} left no unacked operation record")
        assert set(inflight) <= set(unacked.lpns), (
            f"in-flight effects {sorted(inflight)} outside the unacked "
            f"op's LPNs {sorted(unacked.lpns)}")
    else:
        assert unacked is None
    ambiguous = set(unacked.lpns) if unacked is not None else set()
    for lpn, expected in durable.items():
        if lpn not in ambiguous:
            # STRICT durability: acknowledged operations must survive,
            # bit-for-bit, no carve-outs.
            assert recovered.is_mapped(lpn), (
                f"acked LPN {lpn} lost after crash at {fault_point}")
            assert recovered.read(lpn) == expected, (
                f"acked LPN {lpn} reads {recovered.read(lpn)!r}, "
                f"expected {expected!r}")
            continue
        pending = inflight.get(lpn)
        if pending is TRIMMED:
            # Only the recorded unacked trim may be ambiguous: landed
            # (unmapped) or not (old value) — never anything else.
            assert (not recovered.is_mapped(lpn)
                    or recovered.read(lpn) == expected)
        elif pending is None:
            # Inside the unacked op's LPN range but with no in-flight
            # effect recorded for it: the strict contract applies.
            assert recovered.is_mapped(lpn)
            assert recovered.read(lpn) == expected
        else:
            assert recovered.is_mapped(lpn), (
                f"LPN {lpn} lost under interrupted write at {fault_point}")
            assert recovered.read(lpn) in {expected, pending}
    if not crashed:
        # No crash fired: full state must match, including trims (after
        # an explicit flush).
        recovered2 = recovered
        for lpn in range(SPAN):
            if lpn in committed:
                assert recovered2.read(lpn) == committed[lpn]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 6), st.integers(1, 3),
       st.sampled_from(["maplog.before_commit", "maplog.after_commit"]))
def test_share_batch_all_or_nothing_under_crash(batch_size, nth, point):
    faults = FaultPlan()
    nand, config, ftl = fresh(faults)
    for lpn in range(batch_size):
        ftl.write(lpn, ("src", lpn))
        ftl.write(20 + lpn, ("old", lpn))
    faults.arm(PowerFailAfter(point, nth=nth))
    pairs = [SharePair(20 + lpn, lpn) for lpn in range(batch_size)]
    crashed = False
    try:
        ftl.share_batch(pairs)
    except PowerFailure:
        crashed = True
    recovered = PageMappingFtl.recover(nand, config)
    values = [recovered.read(20 + lpn) for lpn in range(batch_size)]
    all_old = all(value == ("old", lpn)
                  for lpn, value in enumerate(values))
    all_new = all(value == ("src", lpn)
                  for lpn, value in enumerate(values))
    assert all_old or all_new, (
        f"partial SHARE batch visible after crash at {point}: {values}")
    if not crashed:
        assert all_new
