"""Property-based crash testing: power may fail at ANY instrumented point
during a random operation stream; after recovery the device must expose a
consistent prefix of the durable history.

Consistency contract checked:
* every LPN reads either a value it held at some committed point, never a
  torn mix or a phantom,
* operations completed before the crash are durable (writes and SHAREs
  return only after their media/commit step),
* the single operation in flight at the crash may have landed or not
  (e.g. power failing right after a write's page program leaves the new
  value discoverable by the OOB scan even though the write never
  returned) — but nothing *older* than the durable value may surface,
* SHARE batches are all-or-nothing.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import PowerFailure, ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import SharePair
from repro.sim.faults import FaultPlan, PowerFailAfter

SPAN = 48

FAULT_POINTS = (
    "ftl.before_program",
    "ftl.after_program",
    "maplog.before_commit",
    "maplog.after_commit",
    "maplog.checkpoint_start",
    "maplog.checkpoint_end",
)

op_strategy = st.one_of(
    st.tuples(st.just("write"), st.integers(0, SPAN - 1),
              st.integers(0, 999)),
    st.tuples(st.just("share"), st.integers(0, SPAN - 1),
              st.integers(0, SPAN - 1)),
    st.tuples(st.just("batch"), st.integers(0, SPAN - 5),
              st.integers(1, 4)),
    st.tuples(st.just("trim"), st.integers(0, SPAN - 1), st.just(0)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
)


def fresh(faults):
    geo = FlashGeometry(page_size=4096, pages_per_block=16, block_count=40,
                        overprovision_ratio=0.2)
    nand = NandArray(geo)
    config = FtlConfig(map_block_count=4, share_table_entries=8)
    return nand, config, PageMappingFtl(nand, config, faults)


#: Sentinel for "the in-flight op was a trim of this LPN".
TRIMMED = object()


def run_stream(ftl, ops, committed, durable_writes, inflight=None):
    """Apply ops; ``committed`` mirrors the logical state after each
    *completed* operation; ``durable_writes`` records ops whose durability
    is promised at return (writes, shares).  ``inflight`` — if given —
    holds, at any moment, the effect the *current* op would have per LPN
    (a value, or ``TRIMMED``); when a crash interrupts the stream it is
    left describing exactly the op whose landing is ambiguous."""
    if inflight is None:
        inflight = {}
    for op in ops:
        kind, a, b = op
        inflight.clear()
        if kind == "write":
            inflight[a] = ("v", a, b)
            ftl.write(a, ("v", a, b))
            committed[a] = ("v", a, b)
            durable_writes[a] = ("v", a, b)
        elif kind == "share":
            if a == b:
                continue
            if b in committed:
                inflight[a] = committed[b]
            try:
                ftl.share(a, b)
            except ShareError:
                inflight.clear()
                continue
            committed[a] = committed[b]
            durable_writes[a] = committed[b]
        elif kind == "batch":
            sources = [lpn for lpn in range(SPAN)
                       if lpn in committed
                       and not a <= lpn < a + b]
            if len(sources) < b:
                continue
            pairs = [SharePair(a + i, sources[i]) for i in range(b)]
            for pair in pairs:
                inflight[pair.dst_lpn] = committed[pair.src_lpn]
            try:
                ftl.share_batch(pairs)
            except ShareError:
                inflight.clear()
                continue
            for pair in pairs:
                committed[pair.dst_lpn] = committed[pair.src_lpn]
                durable_writes[pair.dst_lpn] = committed[pair.src_lpn]
        elif kind == "trim":
            inflight[a] = TRIMMED
            ftl.trim(a)
            committed.pop(a, None)
            durable_writes.pop(a, None)
        elif kind == "flush":
            ftl.flush()
    inflight.clear()


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=5, max_size=60),
       st.sampled_from(FAULT_POINTS),
       st.integers(1, 25))
def test_crash_anywhere_recovers_consistently(ops, fault_point, nth):
    faults = FaultPlan()
    nand, config, ftl = fresh(faults)
    committed = {}
    durable = {}
    faults.arm(PowerFailAfter(fault_point, nth=nth))
    crashed = False
    inflight = {}
    try:
        run_stream(ftl, ops, committed, durable, inflight)
    except PowerFailure:
        crashed = True
    recovered = PageMappingFtl.recover(nand, config)
    recovered.check_invariants()
    for lpn, expected in durable.items():
        # Durability: every operation that returned must survive.  The
        # one op in flight at the crash is ambiguous: its effect may
        # already be on media (a programmed-and-stamped page, an
        # appended trim record) even though it never returned.
        pending = inflight.get(lpn)
        if pending is TRIMMED:
            if not recovered.is_mapped(lpn):
                continue  # the interrupted trim landed
            assert recovered.read(lpn) == expected
            continue
        assert recovered.is_mapped(lpn), (
            f"LPN {lpn} lost after crash at {fault_point}")
        allowed = {expected} if pending is None else {expected, pending}
        assert recovered.read(lpn) in allowed
    if not crashed:
        # No crash fired: full state must match, including trims (after
        # an explicit flush).
        recovered2 = recovered
        for lpn in range(SPAN):
            if lpn in committed:
                assert recovered2.read(lpn) == committed[lpn]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 6), st.integers(1, 3),
       st.sampled_from(["maplog.before_commit", "maplog.after_commit"]))
def test_share_batch_all_or_nothing_under_crash(batch_size, nth, point):
    faults = FaultPlan()
    nand, config, ftl = fresh(faults)
    for lpn in range(batch_size):
        ftl.write(lpn, ("src", lpn))
        ftl.write(20 + lpn, ("old", lpn))
    faults.arm(PowerFailAfter(point, nth=nth))
    pairs = [SharePair(20 + lpn, lpn) for lpn in range(batch_size)]
    crashed = False
    try:
        ftl.share_batch(pairs)
    except PowerFailure:
        crashed = True
    recovered = PageMappingFtl.recover(nand, config)
    values = [recovered.read(20 + lpn) for lpn in range(batch_size)]
    all_old = all(value == ("old", lpn)
                  for lpn, value in enumerate(values))
    all_new = all(value == ("src", lpn)
                  for lpn, value in enumerate(values))
    assert all_old or all_new, (
        f"partial SHARE batch visible after crash at {point}: {values}")
    if not crashed:
        assert all_new
