"""Wall-clock phase profiler: timer accounting, re-entrancy, the
report/format shapes, the null objects, and the cProfile helper."""

import os
import pstats

import pytest

from repro.obs import (NULL_PROFILER, NullProfiler, PhaseProfiler,
                       PhaseTimer, hot_timer, run_with_cprofile)
from repro.obs.profiling import HOT_PHASES, NULL_TIMER


class TestPhaseTimer:
    def test_add_accumulates(self):
        timer = PhaseTimer("x")
        timer.add(1_000)
        timer.add(2_000)
        assert timer.count == 2
        assert timer.ns == 3_000
        assert timer.seconds == pytest.approx(3e-6)

    def test_context_manager_counts_once(self):
        timer = PhaseTimer("x")
        with timer:
            pass
        assert timer.count == 1
        assert timer.ns >= 0

    def test_reentrant_charges_outermost_only(self):
        timer = PhaseTimer("x")
        with timer:
            with timer:
                pass
        assert timer.count == 1

    def test_reset(self):
        timer = PhaseTimer("x")
        timer.add(5)
        timer.reset()
        assert timer.count == 0 and timer.ns == 0


class TestPhaseProfiler:
    def test_timer_is_cached_per_name(self):
        profiler = PhaseProfiler()
        assert profiler.timer("a") is profiler.timer("a")
        assert profiler.timer("a") is not profiler.timer("b")

    def test_report_shares_and_order(self):
        profiler = PhaseProfiler()
        profiler.timer("ftl.gc").add(2_000_000)       # 2 ms
        profiler.timer("sim.dispatch").add(1_000_000)  # 1 ms
        profiler.timer("zzz.custom").add(500_000)
        report = profiler.report(total_wall_s=0.01)
        phases = report["phases"]
        # HOT_PHASES order first, extras appended sorted.
        assert list(phases) == ["sim.dispatch", "ftl.gc", "zzz.custom"]
        gc = phases["ftl.gc"]
        assert gc["wall_s"] == pytest.approx(0.002)
        assert gc["count"] == 1
        assert gc["share_of_total"] == pytest.approx(0.2)
        assert report["total_wall_s"] == 0.01

    def test_report_without_total_omits_share(self):
        profiler = PhaseProfiler()
        profiler.timer("a").add(10)
        report = profiler.report()
        assert "share_of_total" not in report["phases"]["a"]
        assert "total_wall_s" not in report

    def test_events_per_s(self):
        profiler = PhaseProfiler()
        timer = profiler.timer("a")
        for __ in range(4):
            timer.add(250_000)  # 4 events in 1 ms total
        entry = profiler.report()["phases"]["a"]
        assert entry["events_per_s"] == pytest.approx(4_000)
        assert entry["mean_us"] == pytest.approx(250.0)

    def test_format_is_a_table(self):
        profiler = PhaseProfiler()
        profiler.timer("sim.dispatch").add(1_000)
        text = profiler.format(total_wall_s=0.5)
        assert "sim.dispatch" in text
        assert "phase" in text

    def test_total_seconds_and_reset(self):
        profiler = PhaseProfiler()
        profiler.timer("a").add(1_000_000)
        profiler.timer("b").add(1_000_000)
        assert profiler.total_seconds() == pytest.approx(0.002)
        profiler.reset()
        assert profiler.total_seconds() == 0.0
        # Handles stay valid after reset.
        assert profiler.timer("a").count == 0

    def test_hot_phase_names_are_stable(self):
        assert "sim.dispatch" in HOT_PHASES
        assert "ncq.admit" in HOT_PHASES
        assert "ftl.l2p" in HOT_PHASES


class TestNullObjects:
    def test_null_profiler_is_disabled(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert NULL_PROFILER.timer("anything") is NULL_TIMER
        with NULL_PROFILER.timer("x"):
            pass
        assert NULL_PROFILER.report() == {"phases": {}}

    def test_hot_timer_returns_none_when_disabled(self):
        assert hot_timer(None, "a") is None
        assert hot_timer(NULL_PROFILER, "a") is None
        profiler = PhaseProfiler()
        assert hot_timer(profiler, "a") is profiler.timer("a")
        profiler.enabled = False
        assert hot_timer(profiler, "b") is None


class TestCprofile:
    def test_run_with_cprofile_writes_pstats(self, tmp_path):
        path = str(tmp_path / "out.pstats")
        result = run_with_cprofile(lambda: sum(range(1000)), path)
        assert result == sum(range(1000))
        assert os.path.exists(path)
        stats = pstats.Stats(path)
        assert stats.total_calls > 0

    def test_dump_happens_even_on_error(self, tmp_path):
        path = str(tmp_path / "err.pstats")

        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_with_cprofile(boom, path)
        assert os.path.exists(path)
