"""Tests for the host-side SHARE resilience layer: retry policy,
circuit breaker, the guard's error contract, and — the part the paper
never had to worry about — every engine completing its workload with a
permanently failed SHARE command, served entirely by its classic
two-phase fallback."""

import pytest

from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.errors import (CircuitOpenError, CommandUnsupportedError,
                          DeviceBusyError, PowerFailure, ResilienceError,
                          RetriesExhaustedError)
from repro.host.datajournal import CheckpointMode, DataJournalingFs
from repro.host.filesystem import FsConfig, HostFs
from repro.host.resilience import (BREAKER_CLOSED, BREAKER_HALF_OPEN,
                                   BREAKER_OPEN, CircuitBreaker,
                                   RetryPolicy, ShareGuard)
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.sim.clock import SimClock
from repro.sim.faults import (DeviceBusy, FaultPlan, PowerFailAfter,
                              ShareOutage)
from repro.sim.rng import make_rng
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.ssd.device import Ssd

from conftest import small_ssd_config


# ------------------------------------------------------------ RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_us=0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_us=100, backoff_multiplier=2.0,
                             max_backoff_us=350, jitter_fraction=0.0)
        rng = make_rng(1)
        assert policy.backoff_us(1, rng) == 100
        assert policy.backoff_us(2, rng) == 200
        assert policy.backoff_us(3, rng) == 350   # capped
        assert policy.backoff_us(9, rng) == 350

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(jitter_fraction=0.5)
        a = [policy.backoff_us(n, make_rng(7)) for n in range(1, 5)]
        b = [policy.backoff_us(n, make_rng(7)) for n in range(1, 5)]
        assert a == b

    def test_jitter_stays_bounded(self):
        policy = RetryPolicy(base_backoff_us=1000, jitter_fraction=0.25,
                             backoff_multiplier=1.0)
        rng = make_rng(3)
        for __ in range(50):
            assert 1000 <= policy.backoff_us(1, rng) <= 1250


# --------------------------------------------------------- CircuitBreaker


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = SimClock()
        return clock, CircuitBreaker(clock, **kwargs)

    def test_trips_after_threshold(self):
        __, breaker = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        __, breaker = self.make(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_recovers(self):
        clock, breaker = self.make(failure_threshold=1,
                                   recovery_timeout_us=1000,
                                   half_open_probes=1)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1000)
        assert breaker.allow()                  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()              # probe budget spent
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock, breaker = self.make(failure_threshold=1,
                                   recovery_timeout_us=1000)
        breaker.record_failure()
        clock.advance(1000)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        assert not breaker.allow()              # timeout restarted

    def test_force_open_latches_through_time(self):
        clock, breaker = self.make()
        breaker.force_open()
        clock.advance(10 ** 9)
        assert not breaker.allow()
        breaker.reset()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_transition_callback_fires(self):
        seen = []
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 on_transition=seen.append)
        breaker.record_failure()
        breaker.reset()
        assert seen == [BREAKER_OPEN, BREAKER_CLOSED]

    def test_validation(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, recovery_timeout_us=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, half_open_probes=0)


# ------------------------------------------------------------- ShareGuard


def make_guard(clock=None, **kwargs):
    clock = clock or SimClock()
    ssd = Ssd(clock, small_ssd_config())
    return ShareGuard(ssd, engine="test", **kwargs)


class Flaky:
    """Callable failing ``failures`` times before succeeding."""

    def __init__(self, failures, exc=DeviceBusyError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"injected failure {self.calls}")
        return "ok"


class TestShareGuard:
    def test_retries_transient_and_succeeds(self):
        clock = SimClock()
        guard = make_guard(clock)
        fn = Flaky(2)
        assert guard.call("t", fn) == "ok"
        assert fn.calls == 3
        assert guard.stats.retries == 2
        assert guard.stats.attempts == 3
        assert clock.now_us > 0              # backoff advanced the clock
        assert guard.breaker.state == BREAKER_CLOSED

    def test_attempt_budget_exhausts(self):
        guard = make_guard(policy=RetryPolicy(max_attempts=3),
                           breaker=CircuitBreaker(SimClock(),
                                                  failure_threshold=99))
        fn = Flaky(99)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            guard.call("t", fn)
        assert fn.calls == 3
        assert excinfo.value.attempts == 3

    def test_breaker_opening_ends_the_retry_loop(self):
        guard = make_guard()   # threshold 3 < default 4 attempts
        with pytest.raises(RetriesExhaustedError):
            guard.call("t", Flaky(99))
        assert guard.breaker.state == BREAKER_OPEN
        with pytest.raises(CircuitOpenError):
            guard.call("t", Flaky(0))
        assert guard.stats.fast_fails == 1

    def test_non_retryable_fails_immediately(self):
        guard = make_guard()
        fn = Flaky(99, exc=CommandUnsupportedError)
        with pytest.raises(RetriesExhaustedError):
            guard.call("t", fn)
        assert fn.calls == 1
        assert guard.stats.retries == 0

    def test_deadline_bounds_total_time(self):
        guard = make_guard(
            policy=RetryPolicy(max_attempts=100, base_backoff_us=1000,
                               jitter_fraction=0.0, deadline_us=2500),
            breaker=CircuitBreaker(SimClock(), failure_threshold=10 ** 6))
        with pytest.raises(RetriesExhaustedError):
            guard.call("t", Flaky(10 ** 6))
        assert guard.stats.deadline_exceeded == 1

    def test_power_failure_is_never_swallowed(self):
        guard = make_guard()

        def die():
            raise PowerFailure("crash")

        with pytest.raises(PowerFailure):
            guard.call("t", die)
        # No failure recorded: a crash is not a device failure.
        assert guard.stats.failures == 0

    def test_record_fallback_counts(self):
        guard = make_guard()
        guard.record_fallback()
        guard.record_fallback()
        assert guard.stats.fallbacks == 2


# ----------------------------------------- engines on a SHARE-dead device
#
# Each engine runs a real workload with a sticky SHARE outage from the
# first command, must finish with the correct final state, and must show
# on its guard that the fallback path (not luck) served it.


def test_innodb_completes_on_share_outage():
    faults = FaultPlan()
    faults.arm_command(ShareOutage(nth=1))
    clock = SimClock()
    data = Ssd(clock, small_ssd_config(), faults=faults)
    log = Ssd(clock, small_ssd_config(), faults=faults)
    engine = InnoDBEngine(FlushMode.SHARE, data, log,
                          InnoDBConfig(buffer_pool_pages=24,
                                       flush_batch_pages=8),
                          faults=faults)
    engine.create_table("t")
    for i in range(300):
        with engine.transaction() as txn:
            txn.put("t", i % 60, ("row", i))
    engine.checkpoint()
    for key in range(60):
        newest = max(i for i in range(300) if i % 60 == key)
        assert engine.table("t").get(key) == ("row", newest)
    guard = engine.dwb.resilience
    assert guard.stats.fallbacks > 0
    assert guard.stats.failures > 0
    assert data.stats.share_pairs == 0      # no SHARE ever landed


def test_couch_commit_and_compaction_complete_on_share_outage(clock):
    faults = FaultPlan()
    faults.arm_command(ShareOutage(nth=1, error="timeout"))
    ssd = Ssd(clock, small_ssd_config(), faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    store = CouchStore(fs, "/db", CommitMode.SHARE,
                       CouchConfig(leaf_capacity=4, internal_fanout=8,
                                   prealloc_blocks=64))
    for round_number in range(3):
        for key in range(40):
            store.set(key, (f"v{round_number}", key))
        store.commit()
    new_store, result = compact(store, clock)
    assert result.mode == "copy"            # SHARE compaction degraded
    for key in range(40):
        assert new_store.get(key) == ("v2", key)
    guard = new_store.resilience
    assert guard is store.resilience        # guard survives compaction
    assert guard.stats.fallbacks > 0
    assert ssd.stats.share_pairs == 0


def test_sqlite_completes_on_share_outage():
    faults = FaultPlan()
    faults.arm_command(ShareOutage(nth=1))
    clock = SimClock()
    ssd = Ssd(clock, small_ssd_config(), faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    db = SqliteLikeDb(fs, "/app.db", JournalMode.SHARE, page_count=600,
                      faults=faults)
    for i in range(120):
        db.put(i % 30, ("row", i))
    for key in range(30):
        newest = max(i for i in range(120) if i % 30 == key)
        assert db.get(key) == ("row", newest)
    guard = db.pager.resilience
    assert guard.stats.fallbacks > 0
    assert db.pager.stats.share_pairs == 0
    assert db.pager.stats.journal_page_writes > 0   # rollback mode ran


def test_sqlite_crash_mid_fallback_recovers():
    """Power dies inside a degraded (rollback-journal) commit; reopening
    in SHARE mode must replay the journal like ROLLBACK mode would."""
    faults = FaultPlan()
    faults.arm_command(ShareOutage(nth=1))
    clock = SimClock()
    ssd = Ssd(clock, small_ssd_config(), faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    db = SqliteLikeDb(fs, "/app.db", JournalMode.SHARE, page_count=600,
                      faults=faults)
    db.put(1, "committed")
    # Die between the journal write and the home writes of the next
    # degraded commit: the journal is live, the home pages are dirty.
    faults.arm(PowerFailAfter("sqlite.after_journal"))
    with pytest.raises(PowerFailure):
        db.put(1, "doomed")
    ssd.power_cycle()
    faults.disarm()
    faults.disarm_commands()
    reopened = SqliteLikeDb.open(fs, "/app.db", JournalMode.SHARE,
                                 page_count=600)
    assert reopened.get(1) == "committed"
    reopened.put(1, "after")
    assert reopened.get(1) == "after"


def test_datajournal_completes_on_share_outage(clock):
    faults = FaultPlan()
    faults.arm_command(ShareOutage(nth=1))
    ssd = Ssd(clock, small_ssd_config(), faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    journal = DataJournalingFs(fs, CheckpointMode.SHARE, journal_blocks=16)
    file = fs.create("/data")
    file.fallocate(48)
    for step in range(8):
        journal.begin()
        journal.journaled_write(file, step % 12, ("blk", step))
        journal.commit()
    journal.checkpoint()
    for block in range(12):
        steps = [s for s in range(8) if s % 12 == block]
        if steps:
            assert journal.read(file, block) == ("blk", max(steps))
            assert file.pread_block(block) == ("blk", max(steps))
    guard = journal.resilience
    assert guard.stats.fallbacks > 0
    assert journal.stats.checkpoint_share_pairs == 0
    assert journal.stats.checkpoint_writes > 0      # classic copies ran


def test_transient_busy_heals_without_fallback(clock):
    """A busy burst under the retry budget must be absorbed: no
    fallback, SHARE still lands."""
    faults = FaultPlan()
    faults.arm_command(DeviceBusy("share", nth=1, clears_after=2))
    ssd = Ssd(clock, small_ssd_config(), faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    db = SqliteLikeDb(fs, "/app.db", JournalMode.SHARE, page_count=600,
                      faults=faults)
    for i in range(40):
        db.put(i % 10, ("row", i))
    guard = db.pager.resilience
    assert guard.stats.retries >= 2
    assert guard.stats.fallbacks == 0
    assert db.pager.stats.share_pairs > 0


def test_engines_can_share_one_breaker(clock):
    """Two guards on one breaker: a trip seen by one engine fast-fails
    the other (the per-device blast-radius model)."""
    ssd = Ssd(clock, small_ssd_config())
    breaker = CircuitBreaker(clock, failure_threshold=1)
    guard_a = ShareGuard(ssd, engine="a", breaker=breaker)
    guard_b = ShareGuard(ssd, engine="b", breaker=breaker)
    with pytest.raises(ResilienceError):
        guard_a.call("t", Flaky(99, exc=CommandUnsupportedError))
    with pytest.raises(CircuitOpenError):
        guard_b.call("t", Flaky(0))


# ------------------------------------------------- reset + open episodes


class TestBreakerReset:
    def test_reset_always_announces_closed(self):
        """Even an already-closed breaker re-announces CLOSED on reset —
        a promoted shard must re-emit its state gauge, never leave a
        stale value standing."""
        seen = []
        clock = SimClock()
        breaker = CircuitBreaker(clock, on_transition=seen.append)
        breaker.reset()
        assert seen == [BREAKER_CLOSED]
        breaker.force_open()
        breaker.reset()
        assert seen == [BREAKER_CLOSED, BREAKER_OPEN, BREAKER_CLOSED]

    def test_reset_unlatches_force_open(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock)
        breaker.force_open()
        assert not breaker.allow()
        breaker.reset()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_reset_clears_probe_accounting(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 recovery_timeout_us=100,
                                 half_open_probes=1)
        breaker.record_failure()
        clock.advance(100)
        assert breaker.allow()             # half-open, probe consumed
        breaker.reset()
        assert breaker._probes_left == 0
        assert breaker._opened_at is None
        # The next trip starts a clean episode: refused until a full
        # fresh recovery timeout elapses, then probes again.
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        clock.advance(100)
        assert breaker.allow()

    def test_guard_gauge_reemitted_on_reset(self, clock):
        from repro.obs import Telemetry
        from repro.obs.sinks import MemorySink
        telemetry = Telemetry(sink=MemorySink(), mode="sampled")
        device = Ssd(clock, small_ssd_config(), telemetry=telemetry)
        guard = ShareGuard(device, engine="shardX")
        gauge = "resilience.breaker_state.shardX"
        assert telemetry.metrics.snapshot()[gauge] == 0
        guard.breaker.force_open()
        assert telemetry.metrics.snapshot()[gauge] == 2
        guard.breaker.reset()
        assert telemetry.metrics.snapshot()[gauge] == 0


class TestGuardOpenEpisodes:
    def make_guard(self):
        clock = SimClock()
        device = Ssd(clock, small_ssd_config())
        guard = ShareGuard(device, breaker=CircuitBreaker(
            clock, failure_threshold=1, recovery_timeout_us=100))
        return clock, guard

    def test_episode_duration_accumulates(self):
        clock, guard = self.make_guard()
        assert guard.stats.last_open_us is None
        guard.breaker.force_open()
        assert guard.stats.last_open_us == clock.now_us
        clock.advance(1234)
        guard.breaker.reset()
        assert guard.stats.open_duration_us == 1234
        clock.advance(10)
        guard.breaker.force_open()
        second_open = clock.now_us
        clock.advance(6)
        guard.breaker.reset()
        assert guard.stats.last_open_us == second_open
        assert guard.stats.open_duration_us == 1240

    def test_half_open_flap_does_not_restart_episode(self):
        clock, guard = self.make_guard()
        guard.breaker.record_failure()     # open
        opened_at = clock.now_us
        clock.advance(100)
        assert guard.breaker.allow()       # half-open probe
        guard.breaker.record_failure()     # flaps back open
        assert guard.stats.last_open_us == opened_at
        clock.advance(100)
        assert guard.breaker.allow()
        guard.breaker.record_success()     # closes, ending the episode
        assert guard.stats.open_duration_us == clock.now_us - opened_at
