"""Unit tests for the redo log."""

import pytest

from repro.innodb.redo import RedoLog
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


@pytest.fixture
def log(clock):
    device = Ssd(clock, small_ssd_config())
    return RedoLog(device, records_per_page=4)


def test_append_assigns_lsns(log):
    assert log.append("a") == 1
    assert log.append("b") == 2
    assert log.next_lsn == 3


def test_records_not_durable_until_commit(log):
    log.append("a")
    assert log.last_committed_lsn == 0
    log.commit()
    assert log.last_committed_lsn == 1


def test_commit_packs_pages(log):
    for i in range(10):
        log.append(("rec", i))
    writes_before = log.device.stats.host_write_pages
    log.commit()
    assert log.device.stats.host_write_pages - writes_before == 3  # 4+4+2


def test_replay_returns_all_committed(log):
    for i in range(10):
        log.append(("rec", i))
    log.commit()
    records = log.replay_records()
    assert [r for __, r in records] == [("rec", i) for i in range(10)]
    assert [lsn for lsn, __ in records] == list(range(1, 11))


def test_replay_across_commits(log):
    log.append("a")
    log.commit()
    log.append("b")
    log.commit()
    assert [r for __, r in log.replay_records()] == ["a", "b"]


def test_empty_commit_is_cheap(log):
    writes_before = log.device.stats.host_write_pages
    log.commit()
    assert log.device.stats.host_write_pages == writes_before


def test_region_wraps(clock):
    device = Ssd(clock, small_ssd_config())
    log = RedoLog(device, records_per_page=1, region_pages=4)
    for i in range(10):
        log.append(i)
        log.commit()
    # The cursor stayed inside the region.
    assert not device.ftl.is_mapped(5)


def test_bad_records_per_page():
    with pytest.raises(ValueError):
        RedoLog(None, records_per_page=0)
