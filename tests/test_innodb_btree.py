"""Unit tests for the update-in-place B+tree (InnoDB tables)."""

import pytest

from repro.innodb.btree import BTree
from repro.innodb.page import Page


class TreeHarness:
    """In-memory page store standing in for pool + tablespace."""

    def __init__(self, leaf_capacity=4, internal_fanout=4):
        self.pages = {}
        self.next_id = 0
        self.lsn = 0
        self.tree = BTree("t", fetch=self.fetch, write=self.write,
                          allocate=self.allocate, next_lsn=self.next_lsn,
                          leaf_capacity=leaf_capacity,
                          internal_fanout=internal_fanout)

    def fetch(self, page_id):
        return self.pages[page_id]

    def write(self, page):
        self.pages[page.page_id] = page

    def allocate(self):
        self.next_id += 1
        return self.next_id - 1

    def next_lsn(self):
        self.lsn += 1
        return self.lsn


@pytest.fixture
def harness():
    return TreeHarness()


def test_empty_tree(harness):
    assert harness.tree.get(1) is None
    assert not harness.tree.contains(1)
    assert list(harness.tree.items()) == []
    assert harness.tree.depth() == 1


def test_put_get_roundtrip(harness):
    assert harness.tree.put(5, "five")
    assert harness.tree.get(5) == "five"
    assert harness.tree.entry_count == 1


def test_overwrite_returns_false(harness):
    harness.tree.put(5, "v1")
    assert not harness.tree.put(5, "v2")
    assert harness.tree.get(5) == "v2"
    assert harness.tree.entry_count == 1


def test_splits_preserve_order(harness):
    keys = list(range(100))
    import random
    random.Random(1).shuffle(keys)
    for key in keys:
        harness.tree.put(key, ("row", key))
    assert [k for k, __ in harness.tree.items()] == sorted(range(100))
    assert harness.tree.depth() >= 3


def test_get_after_heavy_insert(harness):
    for key in range(200):
        harness.tree.put(key, key * 2)
    for key in range(200):
        assert harness.tree.get(key) == key * 2


def test_delete(harness):
    for key in range(30):
        harness.tree.put(key, key)
    assert harness.tree.delete(7)
    assert harness.tree.get(7) is None
    assert not harness.tree.delete(7)
    assert harness.tree.entry_count == 29


def test_range_scan(harness):
    for key in range(0, 100, 2):
        harness.tree.put(key, key)
    got = list(harness.tree.range(10, 20))
    assert got == [(10, 10), (12, 12), (14, 14), (16, 16), (18, 18), (20, 20)]


def test_range_with_limit(harness):
    for key in range(50):
        harness.tree.put(key, key)
    got = list(harness.tree.range(0, 49, limit=5))
    assert len(got) == 5
    assert got[0] == (0, 0)


def test_range_empty_window(harness):
    harness.tree.put(1, "a")
    harness.tree.put(100, "b")
    assert list(harness.tree.range(2, 99)) == []


def test_tuple_keys(harness):
    harness.tree.put((1, 0, 5), "link-a")
    harness.tree.put((1, 0, 9), "link-b")
    harness.tree.put((1, 1, 2), "link-c")
    harness.tree.put((2, 0, 1), "link-d")
    got = list(harness.tree.range((1, 0, -1), (1, 0, 1 << 62)))
    assert [v for __, v in got] == ["link-a", "link-b"]


def test_validation():
    h = TreeHarness()
    with pytest.raises(ValueError):
        BTree("x", h.fetch, h.write, h.allocate, h.next_lsn, leaf_capacity=1)
    with pytest.raises(ValueError):
        BTree("x", h.fetch, h.write, h.allocate, h.next_lsn,
              internal_fanout=2)


def test_mixed_workload_consistency(harness):
    import random
    rng = random.Random(42)
    model = {}
    for step in range(2000):
        key = rng.randrange(300)
        action = rng.random()
        if action < 0.5:
            model[key] = step
            harness.tree.put(key, step)
        elif action < 0.7:
            model.pop(key, None)
            harness.tree.delete(key)
        else:
            assert harness.tree.get(key) == model.get(key)
    assert sorted(model.items()) == list(harness.tree.items())
