"""Unit tests for the forward (L2P) map."""

import pytest

from repro.ftl.mapping import ForwardMap


def test_starts_unmapped():
    fwd = ForwardMap(16)
    assert fwd.lookup(0) is None
    assert not fwd.is_mapped(0)
    assert fwd.mapped_count == 0


def test_update_and_lookup():
    fwd = ForwardMap(16)
    assert fwd.update(3, 100) is None
    assert fwd.lookup(3) == 100
    assert fwd.mapped_count == 1


def test_update_returns_old():
    fwd = ForwardMap(16)
    fwd.update(3, 100)
    assert fwd.update(3, 200) == 100
    assert fwd.mapped_count == 1


def test_clear():
    fwd = ForwardMap(16)
    fwd.update(3, 100)
    assert fwd.clear(3) == 100
    assert fwd.lookup(3) is None
    assert fwd.mapped_count == 0


def test_clear_unmapped_returns_none():
    fwd = ForwardMap(16)
    assert fwd.clear(5) is None


def test_bounds_checked():
    fwd = ForwardMap(16)
    with pytest.raises(ValueError):
        fwd.lookup(16)
    with pytest.raises(ValueError):
        fwd.update(-1, 0)
    with pytest.raises(ValueError):
        fwd.update(0, -2)


def test_mapped_lpns_iterates_live_entries():
    fwd = ForwardMap(8)
    fwd.update(1, 10)
    fwd.update(5, 50)
    fwd.clear(1)
    assert list(fwd.mapped_lpns()) == [(5, 50)]


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        ForwardMap(0)
