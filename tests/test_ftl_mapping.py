"""Unit tests for the forward (L2P) mapping strategies.

The conformance block runs against every registered backing — the
strategy contract, not one implementation — and the per-strategy blocks
pin the layout-specific behaviours (group alloc/free, run split/merge,
delta anchors/exceptions) plus the SHARE remap-split accounting.
"""

import random

import pytest

from repro.ftl.mapping import (
    DeltaCompressedMap,
    FlatListMap,
    ForwardMap,
    GroupMap,
    RunLengthMap,
    STRATEGY_NAMES,
    UNMAPPED,
    create_strategy,
    resolve_l2p_strategy,
)


@pytest.fixture(params=STRATEGY_NAMES)
def fwd(request):
    return create_strategy(request.param, 16, group_pages=4)


# ------------------------------------------------------------- conformance


def test_starts_unmapped(fwd):
    assert fwd.lookup(0) is None
    assert not fwd.is_mapped(0)
    assert fwd.mapped_count == 0
    assert fwd.get(0) == UNMAPPED


def test_update_and_lookup(fwd):
    assert fwd.update(3, 100) is None
    assert fwd.lookup(3) == 100
    assert fwd.get(3) == 100
    assert fwd.mapped_count == 1


def test_update_returns_old(fwd):
    fwd.update(3, 100)
    assert fwd.update(3, 200) == 100
    assert fwd.mapped_count == 1


def test_clear(fwd):
    fwd.update(3, 100)
    assert fwd.clear(3) == 100
    assert fwd.lookup(3) is None
    assert fwd.mapped_count == 0


def test_clear_unmapped_returns_none(fwd):
    assert fwd.clear(5) is None


def test_bounds_checked(fwd):
    with pytest.raises(ValueError):
        fwd.lookup(16)
    with pytest.raises(ValueError):
        fwd.update(-1, 0)
    with pytest.raises(ValueError):
        fwd.update(0, -2)
    with pytest.raises(ValueError):
        fwd.clear(16)
    with pytest.raises(ValueError):
        fwd.is_mapped(-1)


def test_mapped_lpns_iterates_live_entries_in_order(fwd):
    fwd.update(5, 50)
    fwd.update(1, 10)
    fwd.clear(1)
    fwd.update(2, 77)
    assert list(fwd.mapped_lpns()) == [(2, 77), (5, 50)]
    assert fwd.snapshot() == [(2, 77), (5, 50)]


def test_zero_size_rejected(fwd):
    with pytest.raises(ValueError):
        type(fwd)(0)


def test_get_many_matches_get(fwd):
    fwd.update(2, 20)
    fwd.update(7, 70)
    assert fwd.get_many([2, 3, 7]) == [20, UNMAPPED, 70]


def test_remap_matches_update_semantics(fwd):
    fwd.update(3, 100)
    assert fwd.remap(5, 100) is None      # share into unmapped dst
    assert fwd.remap(3, 100) == 100       # no-op remap
    assert fwd.lookup(5) == 100
    assert fwd.mapped_count == 2


def test_footprint_and_fragments_reported(fwd):
    assert fwd.footprint_bytes() >= 0
    fwd.update(0, 10)
    fwd.update(9, 90)
    assert fwd.footprint_bytes() > 0
    assert fwd.fragment_count() >= 0
    assert fwd.remap_splits >= 0


def test_randomized_agreement_with_dict(fwd):
    rng = random.Random(0xBEEF)
    ref = {}
    for _ in range(3000):
        lpn = rng.randrange(16)
        roll = rng.random()
        if roll < 0.5:
            ppn = rng.randrange(200)
            assert fwd.update(lpn, ppn) == ref.get(lpn)
            ref[lpn] = ppn
        elif roll < 0.7:
            ppn = rng.randrange(200)
            assert fwd.remap(lpn, ppn) == ref.get(lpn)
            ref[lpn] = ppn
        elif roll < 0.9:
            assert fwd.clear(lpn) == ref.pop(lpn, None)
        else:
            assert fwd.lookup(lpn) == ref.get(lpn)
    assert dict(fwd.mapped_lpns()) == ref
    assert fwd.mapped_count == len(ref)


# --------------------------------------------------------- factory / alias


def test_forwardmap_alias_is_flat():
    assert ForwardMap is FlatListMap
    fwd = ForwardMap(8)
    assert fwd.name == "flat"
    assert fwd.table is not None and len(fwd.table) == 8


def test_create_strategy_rejects_unknown():
    with pytest.raises(ValueError):
        create_strategy("btree", 16)


def test_resolve_l2p_strategy_env(monkeypatch):
    monkeypatch.delenv("REPRO_L2P", raising=False)
    assert resolve_l2p_strategy() == "flat"
    monkeypatch.setenv("REPRO_L2P", "runlength")
    assert resolve_l2p_strategy() == "runlength"
    monkeypatch.setenv("REPRO_L2P", "lsm")
    with pytest.raises(ValueError):
        resolve_l2p_strategy()


def test_only_flat_exposes_raw_table():
    for name in STRATEGY_NAMES:
        strategy = create_strategy(name, 16)
        if name == "flat":
            assert strategy.table is not None
        else:
            assert strategy.table is None


# ------------------------------------------------------------------- group


def test_group_allocates_on_first_touch_and_frees():
    fwd = GroupMap(16, group_pages=4)
    base = fwd.footprint_bytes()          # directory only
    assert fwd.fragment_count() == 0
    fwd.update(5, 50)
    assert fwd.fragment_count() == 1
    assert fwd.footprint_bytes() > base
    fwd.update(6, 60)
    assert fwd.fragment_count() == 1      # same group
    fwd.update(13, 130)
    assert fwd.fragment_count() == 2
    fwd.clear(5)
    fwd.clear(6)
    assert fwd.fragment_count() == 1      # group 1 freed
    fwd.clear(13)
    assert fwd.fragment_count() == 0
    assert fwd.footprint_bytes() == base


def test_group_remap_into_untouched_group_counts_split():
    fwd = GroupMap(16, group_pages=4)
    fwd.update(0, 10)
    assert fwd.remap_splits == 0
    fwd.remap(9, 10)                      # group 2 allocated by a remap
    assert fwd.remap_splits == 1
    fwd.remap(10, 10)                     # group already allocated
    assert fwd.remap_splits == 1


# --------------------------------------------------------------- runlength


def test_runlength_sequential_collapses_to_one_run():
    fwd = RunLengthMap(64)
    for i in range(32):
        fwd.update(i, 1000 + i)
    assert fwd.fragment_count() == 1
    assert fwd.mapped_count == 32


def test_runlength_interior_overwrite_splits_run():
    fwd = RunLengthMap(64)
    for i in range(8):
        fwd.update(i, 100 + i)
    fwd.update(4, 999)                    # breaks lockstep mid-run
    assert fwd.fragment_count() == 3      # [0,4) + {4} + (4,8)
    assert fwd.lookup(4) == 999
    assert fwd.lookup(3) == 103 and fwd.lookup(5) == 105


def test_runlength_adjacent_writes_merge_back():
    fwd = RunLengthMap(64)
    fwd.update(0, 100)
    fwd.update(2, 102)
    assert fwd.fragment_count() == 2
    fwd.update(1, 101)                    # bridges the gap in lockstep
    assert fwd.fragment_count() == 1


def test_runlength_edge_trims_do_not_split():
    fwd = RunLengthMap(64)
    for i in range(6):
        fwd.update(i, 100 + i)
    fwd.clear(0)
    fwd.clear(5)
    assert fwd.fragment_count() == 1
    assert fwd.mapped_count == 4


def test_runlength_remap_counts_splits():
    fwd = RunLengthMap(64)
    for i in range(8):
        fwd.update(i, 100 + i)
    assert fwd.remap_splits == 0
    fwd.remap(4, 7777)                    # interior remap: 1 -> 3 runs
    assert fwd.remap_splits == 2
    assert fwd.write_splits == 0          # charged to remaps, not writes


def test_runlength_remap_into_unmapped_space():
    # Regression: remapping a destination no run covers must create a
    # fresh single-page run, not corrupt a neighbour.
    fwd = RunLengthMap(64)
    fwd.update(0, 100)
    fwd.remap(40, 100)
    assert fwd.lookup(40) == 100
    assert fwd.lookup(39) is None and fwd.lookup(41) is None
    assert fwd.mapped_count == 2


# ------------------------------------------------------------------- delta


def test_delta_sequential_fill_needs_no_exceptions():
    fwd = DeltaCompressedMap(64, group_pages=8)
    for i in range(32):
        fwd.update(i, 500 + i)            # perfectly predicted by anchors
    assert fwd.delta_entries == 0
    assert fwd.fragment_count() == 0
    assert fwd.mapped_count == 32


def test_delta_divergent_write_costs_exception():
    fwd = DeltaCompressedMap(64, group_pages=8)
    fwd.update(0, 500)
    fwd.update(1, 9000)                   # diverges from anchor 500
    assert fwd.delta_entries == 1
    assert fwd.lookup(1) == 9000
    fwd.update(1, 501)                    # back on prediction: freed
    assert fwd.delta_entries == 0
    assert fwd.lookup(1) == 501


def test_delta_remap_counts_exception_as_split():
    fwd = DeltaCompressedMap(64, group_pages=8)
    for i in range(8):
        fwd.update(i, 500 + i)
    assert fwd.remap_splits == 0
    fwd.remap(2, 500)                     # aliases lpn 0's page: diverges
    assert fwd.remap_splits == 1
    assert fwd.lookup(2) == 500
    fwd.remap(10, 900)                    # first entry anchors group 1
    assert fwd.remap_splits == 1


def test_delta_clear_drops_anchor_when_group_empties():
    fwd = DeltaCompressedMap(64, group_pages=8)
    fwd.update(3, 700)
    fwd.update(4, 9999)
    base = fwd.footprint_bytes()
    fwd.clear(4)
    fwd.clear(3)
    assert fwd.mapped_count == 0
    assert fwd.delta_entries == 0
    assert fwd.footprint_bytes() < base
    # A fresh write re-anchors the group at the new PPN.
    fwd.update(3, 1234)
    assert fwd.lookup(3) == 1234
