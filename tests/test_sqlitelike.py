"""Tests for the SQLite-like engine: three journal modes, write-cost
signatures, and the crash matrix per mode."""

import pytest

from repro.errors import EngineError, PowerFailure
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.sqlitelike.pager import Pager
from repro.ssd.device import Ssd

from conftest import small_ssd_config

PAGES = 1200


def make_db(mode, faults=None, clock=None):
    clock = clock or SimClock()
    faults = faults or FaultPlan()
    ssd = Ssd(clock, small_ssd_config(), faults=faults)
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    db = SqliteLikeDb(fs, "/app.db", mode, page_count=PAGES, faults=faults)
    return ssd, fs, faults, db


class TestPagerBasics:
    def test_read_unwritten_is_none(self):
        __, __, __, db = make_db(JournalMode.SHARE)
        assert db.pager.read_page(500) is None

    def test_page_bounds(self):
        __, __, __, db = make_db(JournalMode.SHARE)
        with pytest.raises(EngineError):
            db.pager.read_page(PAGES)

    def test_write_outside_txn_rejected(self):
        __, __, __, db = make_db(JournalMode.SHARE)
        with pytest.raises(EngineError):
            db.pager.write_page(5, "x")

    def test_double_begin_rejected(self):
        __, __, __, db = make_db(JournalMode.SHARE)
        db.pager.begin()
        with pytest.raises(EngineError):
            db.pager.begin()

    def test_empty_commit_ok(self):
        __, __, __, db = make_db(JournalMode.ROLLBACK)
        db.pager.begin()
        db.pager.commit()

    def test_bad_config(self):
        clock = SimClock()
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        with pytest.raises(ValueError):
            Pager(fs, "/x", JournalMode.SHARE, page_count=0)
        with pytest.raises(ValueError):
            Pager(fs, "/y", JournalMode.SHARE, page_count=10,
                  scratch_pages=0)


class TestBasicOperations:
    @pytest.mark.parametrize("mode", list(JournalMode))
    def test_put_get(self, mode):
        __, __, __, db = make_db(mode)
        db.put(1, "one")
        assert db.get(1) == "one"
        assert db.get(2) is None

    @pytest.mark.parametrize("mode", list(JournalMode))
    def test_overwrite_and_delete(self, mode):
        __, __, __, db = make_db(mode)
        db.put(1, "v1")
        db.put(1, "v2")
        assert db.get(1) == "v2"
        assert db.delete(1)
        assert db.get(1) is None

    @pytest.mark.parametrize("mode", list(JournalMode))
    def test_multi_key_transaction(self, mode):
        __, __, __, db = make_db(mode)
        with db.transaction():
            for key in range(20):
                db.put(key, ("v", key))
        for key in range(20):
            assert db.get(key) == ("v", key)

    @pytest.mark.parametrize("mode", list(JournalMode))
    def test_abort_discards_changes(self, mode):
        __, __, __, db = make_db(mode)
        db.put(1, "committed")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.put(1, "doomed")
                db.put(2, "also doomed")
                raise RuntimeError("abort")
        assert db.get(1) == "committed"
        assert db.get(2) is None

    @pytest.mark.parametrize("mode", list(JournalMode))
    def test_many_rows_survive_splits(self, mode):
        __, __, __, db = make_db(mode)
        for i in range(800):
            db.put(i % 200, ("v", i))
        expected = {}
        for i in range(800):
            expected[i % 200] = ("v", i)
        assert sorted(expected.items()) == list(db.items())

    def test_nested_txn_rejected(self):
        __, __, __, db = make_db(JournalMode.SHARE)
        with pytest.raises(EngineError):
            with db.transaction():
                with db.transaction():
                    pass


class TestWriteCostSignatures:
    def run_workload(self, mode):
        ssd, __, __, db = make_db(mode)
        for i in range(400):
            db.put(i % 100, ("v", i))
        return ssd.stats.host_write_pages

    def test_share_writes_least(self):
        rollback = self.run_workload(JournalMode.ROLLBACK)
        wal = self.run_workload(JournalMode.WAL)
        share = self.run_workload(JournalMode.SHARE)
        assert share < wal
        assert share < rollback * 0.5

    def test_rollback_journals_before_images(self):
        __, __, __, db = make_db(JournalMode.ROLLBACK)
        db.put(1, "x")
        assert db.pager.stats.journal_page_writes > 0

    def test_wal_checkpoints(self):
        __, __, __, db = make_db(JournalMode.WAL)
        db.pager.wal_checkpoint_frames = 32
        for i in range(200):
            db.put(i % 40, i)
        assert db.pager.stats.checkpoints > 0
        # Contents intact after checkpoints.
        for i in range(160, 200):
            assert db.get(i % 40) is not None

    def test_share_issues_share_pairs(self):
        ssd, __, __, db = make_db(JournalMode.SHARE)
        db.put(1, "x")
        assert ssd.stats.share_pairs > 0


class TestCrashRecovery:
    @pytest.mark.parametrize("mode", list(JournalMode))
    def test_clean_reopen(self, mode):
        ssd, fs, __, db = make_db(mode)
        for i in range(300):
            db.put(i % 80, ("v", i))
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/app.db", mode, page_count=PAGES)
        for i in range(220, 300):
            assert db2.get(i % 80) == ("v", i)

    def test_rollback_crash_mid_inplace_writes_rolls_back(self):
        ssd, fs, faults, db = make_db(JournalMode.ROLLBACK)
        db.put(1, "old-1")
        db.put(2, "old-2")
        faults.arm(PowerFailAfter("sqlite.after_journal"))
        with pytest.raises(PowerFailure):
            with db.transaction():
                db.put(1, "new-1")
                db.put(2, "new-2")
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/app.db", JournalMode.ROLLBACK,
                                page_count=PAGES)
        assert db2.get(1) == "old-1"
        assert db2.get(2) == "old-2"

    def test_rollback_crash_in_torn_window_repairs(self):
        ssd, fs, faults, db = make_db(JournalMode.ROLLBACK)
        db.put(1, "old")
        faults.arm(PowerFailAfter("sqlite.torn_window", nth=1))
        with pytest.raises(PowerFailure):
            db.put(1, "new")
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/app.db", JournalMode.ROLLBACK,
                                page_count=PAGES)
        assert db2.get(1) == "old"

    def test_wal_crash_before_commit_frame_discards(self):
        ssd, fs, faults, db = make_db(JournalMode.WAL)
        db.put(1, "old")
        faults.arm(PowerFailAfter("sqlite.after_wal_commit"))
        with pytest.raises(PowerFailure):
            db.put(1, "new")
        # The commit frame IS durable here (fault fires after fsync), so
        # the update must survive.
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/app.db", JournalMode.WAL,
                                page_count=PAGES)
        assert db2.get(1) == "new"

    def test_share_crash_before_remap_keeps_old(self):
        ssd, fs, faults, db = make_db(JournalMode.SHARE)
        db.put(1, "old")
        faults.arm(PowerFailAfter("sqlite.after_share_stage"))
        with pytest.raises(PowerFailure):
            db.put(1, "new")
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/app.db", JournalMode.SHARE,
                                page_count=PAGES)
        assert db2.get(1) == "old"

    def test_share_crash_mid_remap_batch_is_atomic(self):
        ssd, fs, faults, db = make_db(JournalMode.SHARE)
        with db.transaction():
            db.put(1, "old-1")
            db.put(2, "old-2")
        faults.arm(PowerFailAfter("maplog.before_commit"))
        with pytest.raises(PowerFailure):
            with db.transaction():
                db.put(1, "new-1")
                db.put(2, "new-2")
        ssd.power_cycle()
        db2 = SqliteLikeDb.open(fs, "/app.db", JournalMode.SHARE,
                                page_count=PAGES)
        assert db2.get(1) == "old-1"
        assert db2.get(2) == "old-2"

    def test_share_mode_never_needs_journal_files(self):
        __, fs, __, db = make_db(JournalMode.SHARE)
        db.put(1, "x")
        assert not fs.exists("/app.db" + "-journal")
        assert not fs.exists("/app.db" + "-wal")
