"""Tests for the metrics registry: namespacing, instrument semantics,
histogram percentile parity with repro.sim.stats, bounded memory."""

import pytest

from repro.obs import (
    DEFAULT_MAX_SAMPLES,
    BoundedHistogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.sim.stats import Histogram, percentile


class TestCounter:
    def test_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("a")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = MetricsRegistry().counter("a")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3


class TestNamespacing:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x.y") is registry.counter("x.y")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x.y")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x.y")

    @pytest.mark.parametrize("bad", ["", ".a", "a.", "a..b", "a b"])
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(bad)

    def test_scope_prefixes(self):
        registry = MetricsRegistry()
        scope = registry.scope("device.data")
        counter = scope.counter("writes")
        counter.inc()
        assert registry.counter("device.data.writes").value == 1

    def test_nested_scopes(self):
        registry = MetricsRegistry()
        inner = registry.scope("a").scope("b")
        inner.gauge("g").set(7)
        assert registry.snapshot()["a.b.g"] == 7

    def test_snapshot_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1)
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap == {"a": 1, "b": 2}

    def test_registry_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.snapshot()["c"] == 1


class TestBoundedHistogram:
    def test_percentiles_match_sim_stats_below_cap(self):
        """While the reservoir is not full, summaries agree exactly with
        repro.sim.stats.Histogram — same percentile math, same samples."""
        bounded = BoundedHistogram("h")
        exact = Histogram()
        values = [float(v) for v in (5, 1, 9, 2, 8, 3, 7, 4, 6, 10)]
        for value in values:
            bounded.record(value)
            exact.record(value)
        b, e = bounded.summary(), exact.summary()
        assert b["count"] == len(values)
        for key in ("mean", "p25", "p50", "p75", "p99", "max"):
            assert b[key] == e[key], key

    def test_exact_stats_beyond_cap(self):
        hist = BoundedHistogram("h", max_samples=16)
        for value in range(1000):
            hist.record(float(value))
        assert hist.count == 1000
        assert hist.total == sum(range(1000))
        assert hist.min == 0.0
        assert hist.max == 999.0
        assert len(hist._samples) == 16

    def test_reservoir_percentiles_are_plausible(self):
        hist = BoundedHistogram("h", max_samples=256)
        for value in range(10_000):
            hist.record(float(value))
        # The reservoir is a uniform sample; the median of 0..9999 must
        # land far from either edge.
        assert 2000 < hist.pct(50) < 8000

    def test_deterministic_across_runs(self):
        def fill():
            hist = BoundedHistogram("h", max_samples=8)
            for value in range(500):
                hist.record(float(value))
            return hist.summary()
        assert fill() == fill()

    def test_empty_summary(self):
        assert BoundedHistogram("h").summary() == {"count": 0}

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            BoundedHistogram("h").record(-1.0)

    def test_default_cap(self):
        assert BoundedHistogram("h")._cap == DEFAULT_MAX_SAMPLES

    def test_percentile_function_is_shared(self):
        hist = BoundedHistogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.record(value)
        assert hist.pct(50) == percentile([1.0, 2.0, 3.0, 4.0], 50)


class TestNullRegistry:
    def test_null_instruments_accept_everything(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc()
        counter.inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").record(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.names() == []

    def test_null_scope_is_itself(self):
        assert NULL_REGISTRY.scope("x") is NULL_REGISTRY
