"""Unit tests for power-failure injection."""

import pytest

from repro.errors import PowerFailure
from repro.sim.faults import FaultPlan, PowerFailAfter


def test_disarmed_plan_is_silent():
    plan = FaultPlan()
    for _ in range(10):
        plan.checkpoint("anywhere")
    assert plan.hits("anywhere") == 10


def test_fires_on_nth_hit():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("ftl.before_program", nth=3))
    plan.checkpoint("ftl.before_program")
    plan.checkpoint("ftl.before_program")
    with pytest.raises(PowerFailure):
        plan.checkpoint("ftl.before_program")


def test_fires_only_once():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("p", nth=1))
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")
    plan.checkpoint("p")  # must not raise again


def test_other_points_unaffected():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("a"))
    plan.checkpoint("b")
    with pytest.raises(PowerFailure):
        plan.checkpoint("a")


def test_disarm():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("a"))
    plan.disarm("a")
    plan.checkpoint("a")


def test_disarm_all():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("a"))
    plan.arm(PowerFailAfter("b"))
    plan.disarm()
    plan.checkpoint("a")
    plan.checkpoint("b")


def test_trace_records_order():
    plan = FaultPlan()
    plan.enable_trace()
    plan.checkpoint("x")
    plan.checkpoint("y")
    assert plan.trace == ["x", "y"]


def test_bad_nth_rejected():
    with pytest.raises(ValueError):
        PowerFailAfter("p", nth=0)


def test_two_fuses_at_one_point_both_fire():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("p", nth=2))
    plan.arm(PowerFailAfter("p", nth=4))
    plan.checkpoint("p")
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")
    plan.checkpoint("p")
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")
    plan.checkpoint("p")  # both fuses consumed


def test_duplicate_arm_raises():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("p", nth=3))
    with pytest.raises(ValueError):
        plan.arm(PowerFailAfter("p", nth=3))
    # A different nth at the same point is fine.
    plan.arm(PowerFailAfter("p", nth=5))
    assert plan.armed_count("p") == 2


def test_nth_counts_from_arming():
    plan = FaultPlan()
    plan.checkpoint("p")
    plan.checkpoint("p")
    plan.arm(PowerFailAfter("p", nth=2))
    plan.checkpoint("p")
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")


def test_rearm_after_fire_allowed():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("p", nth=1))
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")
    plan.arm(PowerFailAfter("p", nth=1))  # fired fuse no longer armed
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")


# ------------------------------------------------- ack-boundary journal


def test_operation_acks_on_clean_exit():
    plan = FaultPlan()
    with plan.operation("dev.write", (7,)):
        plan.checkpoint("dev.step")
    assert plan.unacked_op() is None
    acked = plan.last_acked_op()
    assert acked is not None
    assert acked.kind == "dev.write"
    assert acked.lpns == (7,)
    assert acked.status == "acked"


def test_operation_records_unacked_on_power_failure():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("dev.step"))
    with pytest.raises(PowerFailure):
        with plan.operation("dev.write", (3, 4)):
            plan.checkpoint("dev.step")
    unacked = plan.unacked_op()
    assert unacked is not None
    assert unacked.kind == "dev.write"
    assert unacked.lpns == (3, 4)
    assert unacked.status == "unacked"
    assert plan.last_acked_op() is None


def test_operation_failed_is_not_ambiguous():
    plan = FaultPlan()
    with pytest.raises(RuntimeError):
        with plan.operation("dev.write", (1,)):
            raise RuntimeError("ordinary failure, not a power cut")
    assert plan.unacked_op() is None
    assert plan.last_acked_op() is None


def test_clean_exit_fires_ack_checkpoint():
    plan = FaultPlan()
    plan.enable_trace()
    with plan.operation("dev.write", (1,)):
        pass
    assert plan.trace == ["dev.write.ack"]


def test_power_failure_at_ack_boundary_is_unacked():
    # The op's media work completed, but power failed before completion
    # reached the caller: durable-but-unacknowledged.
    plan = FaultPlan()
    plan.arm(PowerFailAfter("dev.write.ack"))
    with pytest.raises(PowerFailure):
        with plan.operation("dev.write", (9,)):
            pass
    unacked = plan.unacked_op()
    assert unacked is not None
    assert unacked.status == "unacked"
    assert unacked.lpns == (9,)


def test_nested_scopes_journal_only_outermost():
    plan = FaultPlan()
    plan.enable_trace()
    with plan.operation("dev.write", (5,)):
        with plan.operation("ftl.write", (5,)):
            pass
    # Inner scope fires its .ack for point coverage but does not journal.
    assert plan.trace == ["ftl.write.ack", "dev.write.ack"]
    acked = plan.last_acked_op()
    assert acked is not None and acked.kind == "dev.write"


def test_nested_power_failure_blames_outermost():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("ftl.step"))
    with pytest.raises(PowerFailure):
        with plan.operation("dev.write", (2,)):
            with plan.operation("ftl.write", (2,)):
                plan.checkpoint("ftl.step")
    unacked = plan.unacked_op()
    assert unacked is not None
    assert unacked.kind == "dev.write"


def test_clear_unacked():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("x"))
    with pytest.raises(PowerFailure):
        with plan.operation("dev.trim", (0,)):
            plan.checkpoint("x")
    assert plan.unacked_op() is not None
    plan.clear_unacked()
    assert plan.unacked_op() is None
