"""Unit tests for power-failure injection."""

import pytest

from repro.errors import PowerFailure
from repro.sim.faults import FaultPlan, PowerFailAfter


def test_disarmed_plan_is_silent():
    plan = FaultPlan()
    for _ in range(10):
        plan.checkpoint("anywhere")
    assert plan.hits("anywhere") == 10


def test_fires_on_nth_hit():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("ftl.before_program", nth=3))
    plan.checkpoint("ftl.before_program")
    plan.checkpoint("ftl.before_program")
    with pytest.raises(PowerFailure):
        plan.checkpoint("ftl.before_program")


def test_fires_only_once():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("p", nth=1))
    with pytest.raises(PowerFailure):
        plan.checkpoint("p")
    plan.checkpoint("p")  # must not raise again


def test_other_points_unaffected():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("a"))
    plan.checkpoint("b")
    with pytest.raises(PowerFailure):
        plan.checkpoint("a")


def test_disarm():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("a"))
    plan.disarm("a")
    plan.checkpoint("a")


def test_disarm_all():
    plan = FaultPlan()
    plan.arm(PowerFailAfter("a"))
    plan.arm(PowerFailAfter("b"))
    plan.disarm()
    plan.checkpoint("a")
    plan.checkpoint("b")


def test_trace_records_order():
    plan = FaultPlan()
    plan.enable_trace()
    plan.checkpoint("x")
    plan.checkpoint("y")
    assert plan.trace == ["x", "y"]


def test_bad_nth_rejected():
    with pytest.raises(ValueError):
        PowerFailAfter("p", nth=0)
