"""Shared fixtures: small, fast device stacks for unit tests."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig


def small_ssd_config(page_size=4096, share_entries=250, trace=0):
    return SsdConfig(
        geometry=FlashGeometry.small(page_size=page_size),
        timing=FAST_TIMING,
        ftl=FtlConfig(map_block_count=4, share_table_entries=share_entries),
        trace_capacity=trace,
    )


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def ssd(clock):
    """A small SHARE-capable SSD on fast timing."""
    return Ssd(clock, small_ssd_config())
