"""Recovery parity across L2P mapping strategies.

Every backing must rebuild the *same* logical mapping from the same
media: after a power cut at any delta-log fault point of the ftl-basic
harness, recovering the NAND under each strategy's config must agree —
entry for entry — with a recovery under the flat default.  The sweep
reuses the crash explorer's deterministic enumerate-then-inject
machinery, so the sampled power-cut sites land exactly where the map
log commits and checkpoints.
"""

import dataclasses

import pytest

from repro.crashcheck.explorer import (Occurrence, enumerate_occurrences,
                                       sample_evenly)
from repro.crashcheck.workloads import FtlBasicHarness
from repro.errors import PowerFailure
from repro.ftl.mapping import STRATEGY_NAMES
from repro.ftl.pagemap import PageMappingFtl
from repro.sim.faults import FaultPlan, PowerFailAfter

#: Per-strategy cap on injected power cuts (checkpoint boundaries are
#: always kept; commit points are sampled evenly up to this budget).
SAMPLE_BUDGET = 12


def _maplog_occurrences():
    """The delta-log fault sites of one deterministic ftl-basic run:
    every checkpoint rotation point plus an even sample of the
    per-batch commit points."""
    occurrences = enumerate_occurrences(FtlBasicHarness)
    maplog = [occ for occ in occurrences if occ.point.startswith("maplog.")]
    assert maplog, "ftl-basic reached no maplog fault points"
    rotations = [occ for occ in maplog
                 if occ.point in ("maplog.checkpoint_start",
                                  "maplog.checkpoint_end")]
    commits = [occ for occ in maplog if occ not in rotations]
    sampled = rotations + sample_evenly(
        commits, max(1, SAMPLE_BUDGET - len(rotations)))
    # De-dup while keeping enumeration order.
    return list(dict.fromkeys(sampled))


_SITES = _maplog_occurrences()


def _crash_at(site: Occurrence) -> FtlBasicHarness:
    """Run ftl-basic (under whatever ``REPRO_L2P`` resolves to) until the
    injected power cut."""
    faults = FaultPlan()
    harness = FtlBasicHarness(faults)
    faults.arm(PowerFailAfter(site.point, site.nth))
    with pytest.raises(PowerFailure):
        harness.run()
    faults.disarm()
    return harness


@pytest.mark.parametrize("strategy",
                         [s for s in STRATEGY_NAMES if s != "flat"])
@pytest.mark.parametrize("site", _SITES,
                         ids=[f"{occ.point}#{occ.nth}" for occ in _SITES])
def test_recovery_parity_with_flat(strategy, site):
    # The workload itself runs under the flat default (the op sequence,
    # and therefore the persisted media, is identical either way — the
    # backing only changes the DRAM representation); parity is about
    # what each strategy *rebuilds* from that media.
    harness = _crash_at(site)
    nand = harness.ssd.nand
    base_config = harness.ssd.config.ftl
    flat = PageMappingFtl.recover(
        nand, dataclasses.replace(base_config, l2p_strategy="flat"))
    other = PageMappingFtl.recover(
        nand, dataclasses.replace(base_config, l2p_strategy=strategy,
                                  l2p_group_pages=16))
    assert other.fwd.name == strategy
    assert other.fwd.snapshot() == flat.fwd.snapshot()
    assert other.fwd.mapped_count == flat.fwd.mapped_count
    # The rebuilt strategy must satisfy the FTL's own cross-structure
    # invariants too, not just mirror the flat table.
    other.check_invariants()


@pytest.mark.parametrize("strategy",
                         [s for s in STRATEGY_NAMES if s != "flat"])
def test_crash_while_running_under_strategy(strategy, monkeypatch):
    # Complementary direction: the *workload* runs under the compact
    # backing (the harness resolves REPRO_L2P), crashes at a mid-run
    # commit site, and both that backing and the flat one rebuild
    # identical mappings from its media.
    monkeypatch.setenv("REPRO_L2P", strategy)
    site = _SITES[len(_SITES) // 2]
    harness = _crash_at(site)
    assert harness.ssd.ftl.fwd.name == strategy
    nand = harness.ssd.nand
    base_config = harness.ssd.config.ftl
    recovered = PageMappingFtl.recover(nand, base_config)
    flat = PageMappingFtl.recover(
        nand, dataclasses.replace(base_config, l2p_strategy="flat"))
    assert recovered.fwd.name == strategy
    assert recovered.fwd.snapshot() == flat.fwd.snapshot()
    recovered.check_invariants()
