"""Native command queue, sessions, and the event-driven device core."""

import pytest

from repro.errors import DeviceError
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig
from repro.ssd.ncq import DeviceSession, NativeCommandQueue, issuing


def build(queue_depth=1, channel_count=1, plane_ways=1, block_count=32):
    clock = SimClock()
    ssd = Ssd(clock, SsdConfig(
        geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                               block_count=block_count,
                               channel_count=channel_count),
        timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4),
        queue_depth=queue_depth, plane_ways=plane_ways))
    return clock, ssd


class TestNativeCommandQueue:
    def test_depth_one_serialises(self):
        ncq = NativeCommandQueue(1)
        assert ncq.admit(0) == 0
        ncq.commit(100)
        # Second command arriving early waits for the first completion.
        assert ncq.admit(10) == 100

    def test_deeper_queue_admits_immediately(self):
        ncq = NativeCommandQueue(2)
        assert ncq.admit(0) == 0
        ncq.commit(100)
        assert ncq.admit(10) == 10   # a free tag exists
        ncq.commit(150)
        assert ncq.admit(20) == 100  # both tags busy: wait for earliest

    def test_completed_commands_free_tags(self):
        ncq = NativeCommandQueue(2)
        ncq.commit(50)
        ncq.commit(60)
        assert ncq.admit(70) == 70   # both completed by arrival
        assert ncq.inflight == 0

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            NativeCommandQueue(0)

    def test_reset_forgets_outstanding(self):
        ncq = NativeCommandQueue(1)
        ncq.commit(500)
        ncq.reset()
        assert ncq.admit(0) == 0


class TestSessions:
    def test_session_cursor_chains_commands(self):
        clock, ssd = build()
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            ssd.write(1, "a")
            first_end = session.now_us
            ssd.write(2, "b")
        assert first_end > 0
        assert session.now_us > first_end
        # Submissions did not advance the shared clock.
        assert clock.now_us == 0
        ssd.drain()
        assert clock.now_us == session.now_us

    def test_conflicting_session_attach_raises(self):
        clock, ssd = build()
        ssd.attach_session(DeviceSession(0, 0))
        with pytest.raises(DeviceError):
            ssd.attach_session(DeviceSession(1, 0))
        ssd.detach_session()

    def test_submit_dispatches_by_kind(self):
        clock, ssd = build()
        ssd.submit("write", 3, "payload")
        assert ssd.submit("read", 3) == "payload"
        with pytest.raises(DeviceError):
            ssd.submit("mkfs")

    def test_poll_reports_inflight(self):
        clock, ssd = build(queue_depth=4)
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            for lpn in range(4):
                ssd.write(lpn, ("v", lpn))
        assert ssd.poll(0) >= 0
        ssd.drain()
        assert ssd.poll() == 0

    def test_two_clients_overlap_only_with_depth(self):
        # At depth 1 two clients' commands serialise; at depth 2 they
        # overlap, so the makespan shrinks.
        def run(depth):
            clock, ssd = build(queue_depth=depth, channel_count=2)
            sessions = [DeviceSession(c, 0) for c in range(2)]
            for index in range(40):
                session = sessions[index % 2]
                with issuing(session, ssd):
                    ssd.write(index % 48, ("v", index))
                ssd.poll(session.now_us)
            ssd.drain()
            return clock.now_us

        assert run(2) < run(1)


class TestDeferredAcks:
    def test_sync_write_acks_at_completion(self):
        from repro.sim.faults import FaultPlan

        plan = FaultPlan()
        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4)),
            faults=plan)
        ssd.write(1, "a")
        assert plan.unacked_ops() == []

    def test_power_cycle_strands_inflight_ops(self):
        from repro.sim.faults import FaultPlan

        plan = FaultPlan()
        clock = SimClock()
        ssd = Ssd(clock, SsdConfig(
            geometry=FlashGeometry(page_size=4096, pages_per_block=16,
                                   block_count=32),
            timing=FAST_TIMING, ftl=FtlConfig(map_block_count=4),
            queue_depth=8), faults=plan)
        session = DeviceSession(0, 0)
        with issuing(session, ssd):
            for lpn in range(5):
                ssd.write(lpn, ("v", lpn))
        inflight = len(ssd._inflight)
        assert inflight > 0
        ssd.power_cycle()
        unacked = plan.unacked_ops()
        assert len(unacked) == inflight
        assert all(record.status == "unacked" for record in unacked)


class TestChannelOverlap:
    def test_multi_channel_beats_single_channel(self):
        # The same write stream finishes sooner with channels to overlap
        # on — the tentpole property the scaling benchmark measures.
        def makespan(channels):
            clock, ssd = build(queue_depth=8, channel_count=channels,
                               block_count=64)
            sessions = [DeviceSession(c, 0) for c in range(8)]
            for index in range(160):
                session = sessions[index % 8]
                with issuing(session, ssd):
                    ssd.write(index % 96, ("v", index))
                ssd.poll(session.now_us)
            ssd.drain()
            return clock.now_us

        assert makespan(4) < makespan(1)

    def test_single_channel_qd1_matches_sync_model(self):
        # One session over a QD1 single-channel device reproduces the
        # synchronous model's clock exactly, command by command.
        ops = [(lpn % 48, ("v", lpn)) for lpn in range(120)]

        clock_sync, ssd_sync = build()
        sync_times = []
        for lpn, value in ops:
            ssd_sync.write(lpn, value)
            sync_times.append(clock_sync.now_us)

        clock_ses, ssd_ses = build()
        session = DeviceSession(0, 0)
        session_times = []
        for lpn, value in ops:
            with issuing(session, ssd_ses):
                ssd_ses.write(lpn, value)
            session_times.append(session.now_us)
        ssd_ses.drain()
        assert session_times == sync_times
        assert clock_ses.now_us == clock_sync.now_us

    def test_queue_report_shape(self):
        clock, ssd = build(channel_count=2)
        ssd.write(1, "a")
        report = ssd.queue_report()
        assert report["queue_depth"] == 1
        assert report["channel_count"] == 2
        assert len(report["channel_busy_us"]) == 2
        assert len(report["channel_utilization"]) == 2
        assert report["inflight"] == 0
