"""Property-based tests: the couchstore engine (in both commit modes)
must match a dict model through batched commits, reopen, and compaction."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config

KEYS = st.integers(0, 40)
VALUES = st.integers(0, 1000)

op_strategy = st.one_of(
    st.tuples(st.just("set"), KEYS, VALUES),
    st.tuples(st.just("delete"), KEYS, st.just(0)),
)
batch_strategy = st.lists(op_strategy, min_size=1, max_size=10)


def fresh(mode):
    clock = SimClock()
    ssd = Ssd(clock, small_ssd_config())
    fs = HostFs(ssd, FsConfig(journal_blocks=8))
    config = CouchConfig(leaf_capacity=3, internal_fanout=4,
                         prealloc_blocks=32)
    return clock, ssd, fs, CouchStore(fs, "/db", mode, config)


def drive(store, batches, model):
    for batch in batches:
        for kind, key, value in batch:
            if kind == "set":
                store.set(key, ("v", key, value))
                model[key] = ("v", key, value)
            else:
                store.delete(key)
                model.pop(key, None)
        store.commit()


@settings(max_examples=35, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, max_size=15),
       st.sampled_from(list(CommitMode)))
def test_engine_matches_dict(batches, mode):
    __, ssd, __, store = fresh(mode)
    model = {}
    drive(store, batches, model)
    for key in range(41):
        assert store.get(key) == model.get(key)
    assert store.doc_count == len(model)
    ssd.ftl.check_invariants()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=1, max_size=10),
       st.sampled_from(list(CommitMode)))
def test_reopen_after_power_cycle_matches_committed_state(batches, mode):
    __, ssd, fs, store = fresh(mode)
    model = {}
    drive(store, batches, model)
    ssd.power_cycle()
    reopened = CouchStore.reopen(fs, "/db", mode, store.config)
    for key in range(41):
        assert reopened.get(key) == model.get(key)
    assert reopened.doc_count == len(model)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=1, max_size=10),
       st.sampled_from(list(CommitMode)))
def test_compaction_preserves_contents(batches, mode):
    clock, ssd, __, store = fresh(mode)
    model = {}
    drive(store, batches, model)
    new_store, result = compact(store, clock)
    assert result.docs_moved == len(model)
    for key in range(41):
        assert new_store.get(key) == model.get(key)
    assert new_store.stale_blocks == 0
    ssd.ftl.check_invariants()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(batch_strategy, min_size=2, max_size=8),
       st.sampled_from(list(CommitMode)))
def test_usable_after_compact_then_reopen(batches, mode):
    clock, ssd, fs, store = fresh(mode)
    model = {}
    drive(store, batches[:-1], model)
    store, __ = compact(store, clock)
    drive(store, batches[-1:], model)
    ssd.power_cycle()
    reopened = CouchStore.reopen(fs, "/db", mode, store.config)
    for key, expected in model.items():
        assert reopened.get(key) == expected
