"""Satellite: multiple devices on one EventScheduler must fail
independently — ``power_cycle()`` on one device cancels only its own
drain event and in-flight tickets, leaving its neighbours' pending
completions to fire on schedule (the property the sharded tier's
single-shard kills depend on)."""

from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.ssd.device import Ssd
from repro.ssd.ncq import DeviceSession

from conftest import small_ssd_config


def make_two(clock):
    events = EventScheduler(clock)
    first = Ssd(clock, small_ssd_config(), name="first", events=events)
    second = Ssd(clock, small_ssd_config(), name="second", events=events)
    return events, first, second


def queue_writes(ssd, session, count, base_lpn=0):
    ssd._session = session
    try:
        for n in range(count):
            ssd.write(base_lpn + n, (ssd.name, n))
    finally:
        ssd._session = None


def test_power_cycle_cancels_only_own_inflight(clock):
    events, first, second = make_two(clock)
    session_a = DeviceSession(client=0, now_us=clock.now_us)
    session_b = DeviceSession(client=1, now_us=clock.now_us)
    queue_writes(first, session_a, 4)
    queue_writes(second, session_b, 4)
    assert first._inflight and second._inflight

    first.power_cycle()

    # The victim's queue is gone; the neighbour's is untouched.
    assert not first._inflight
    assert len(second._inflight) == 4
    second.drain()
    assert not second._inflight
    for n in range(4):
        assert second.read(n) == ("second", n)


def test_neighbour_completions_survive_the_cycle(clock):
    """Drain after the kill must complete exactly the survivor's work:
    the dead device's cancelled tickets never fire."""
    events, first, second = make_two(clock)
    session_a = DeviceSession(client=0, now_us=clock.now_us)
    session_b = DeviceSession(client=1, now_us=clock.now_us)
    queue_writes(first, session_a, 3)
    queue_writes(second, session_b, 3)
    first.power_cycle()
    pages_queued = second.stats.host_write_pages
    first.drain()      # no-op: nothing in flight on the dead device
    second.drain()
    assert second.stats.host_write_pages == pages_queued == 3
    assert not second._inflight


def test_dead_device_recovers_while_neighbour_runs(clock):
    events, first, second = make_two(clock)
    for n in range(6):
        first.write(n, ("first", n))
    session_b = DeviceSession(client=1, now_us=clock.now_us)
    queue_writes(second, session_b, 4)

    first.power_cycle()    # recovery runs with second's work in flight

    assert len(second._inflight) == 4
    for n in range(6):
        assert first.read(n) == ("first", n)    # recovered from media
    second.drain()
    for n in range(4):
        assert second.read(n) == ("second", n)
