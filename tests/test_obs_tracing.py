"""Tests for span tracing: nesting, ids, virtual-time durations,
pause semantics, error capture."""

import pytest

from repro.obs import MemorySink, NULL_SPAN, Telemetry, Tracer
from repro.sim.clock import SimClock


def make_tracer():
    sink = MemorySink()
    clock = SimClock()
    tracer = Tracer(sink, clock)
    return tracer, sink, clock


class TestSpanBasics:
    def test_root_span_record(self):
        tracer, sink, clock = make_tracer()
        clock.advance(10)
        with tracer.span("op", key=1):
            clock.advance(5)
        (record,) = sink.spans()
        assert record["name"] == "op"
        assert record["parent_id"] is None
        assert record["trace_id"] == record["span_id"]
        assert record["start_us"] == 10
        assert record["end_us"] == 15
        assert record["duration_us"] == 5
        assert record["attrs"] == {"key": 1}

    def test_nesting_assigns_parent_and_trace(self):
        tracer, sink, __ = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        inner_rec, outer_rec = sink.spans()
        assert inner_rec["name"] == "inner"  # children finish first
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert inner_rec["trace_id"] == outer_rec["span_id"]

    def test_current_tracks_stack(self):
        tracer, __, ___ = make_tracer()
        assert tracer.current is NULL_SPAN
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is NULL_SPAN

    def test_sibling_spans_share_no_parent(self):
        tracer, sink, __ = make_tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = sink.spans()
        assert first["parent_id"] is None
        assert second["parent_id"] is None
        assert first["trace_id"] != second["trace_id"]

    def test_set_adds_attrs_late(self):
        tracer, sink, __ = make_tracer()
        with tracer.span("op") as span:
            span.set(pages=3, gc=True)
        assert sink.spans()[0]["attrs"] == {"pages": 3, "gc": True}

    def test_exception_records_error_and_closes(self):
        tracer, sink, __ = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        (record,) = sink.spans()
        assert record["attrs"]["error"] == "RuntimeError"
        assert tracer.depth == 0

    def test_out_of_order_finish_closes_younger_spans(self):
        tracer, sink, __ = make_tracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        tracer.finish(outer)  # inner never closed explicitly
        names = [record["name"] for record in sink.spans()]
        assert names == ["inner", "outer"]
        assert tracer.depth == 0

    def test_open_span_duration_raises(self):
        tracer, __, ___ = make_tracer()
        span = tracer.span("op")
        with pytest.raises(ValueError, match="still open"):
            __ = span.duration_us


class TestDisabledTracing:
    def test_disabled_returns_null_span(self):
        tracer, sink, __ = make_tracer()
        tracer.enabled = False
        span = tracer.span("op")
        assert span is NULL_SPAN
        with span:
            pass
        assert sink.spans() == []

    def test_null_span_accepts_set(self):
        assert NULL_SPAN.set(anything=1) is NULL_SPAN


class TestTelemetryFacade:
    def test_pause_resume(self):
        telemetry = Telemetry(MemorySink())
        clock = SimClock()
        telemetry.bind_clock(clock)
        telemetry.pause()
        with telemetry.tracer.span("hidden"):
            pass
        telemetry.resume()
        with telemetry.tracer.span("visible"):
            pass
        names = [r["name"] for r in telemetry.sink.spans()]
        assert names == ["visible"]

    def test_reset_measurement_zeroes_metrics(self):
        telemetry = Telemetry(MemorySink())
        telemetry.metrics.counter("c").inc(5)
        telemetry.reset_measurement()
        assert telemetry.metrics.snapshot()["c"] == 0

    def test_spans_use_virtual_clock_not_wall_clock(self):
        telemetry = Telemetry(MemorySink())
        clock = SimClock()
        telemetry.bind_clock(clock)
        with telemetry.tracer.span("op"):
            clock.advance(123_456)
        (record,) = telemetry.sink.spans()
        assert record["duration_us"] == 123_456
