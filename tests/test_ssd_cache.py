"""Tests for the controller DRAM read cache and its coherence with every
mutating command."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.cache import DramReadCache
from repro.ssd.device import Ssd, SsdConfig


def cached_ssd(clock, pages=64):
    config = SsdConfig(geometry=FlashGeometry.small(), timing=FAST_TIMING,
                       ftl=FtlConfig(), dram_cache_pages=pages)
    return Ssd(clock, config)


class TestCacheUnit:
    def test_miss_then_hit(self):
        cache = DramReadCache(4)
        assert cache.lookup(1) is None
        cache.insert(1, "a")
        assert cache.lookup(1) == ("a",)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = DramReadCache(2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.lookup(1)          # refresh 1
        cache.insert(3, "c")     # evicts 2
        assert cache.lookup(2) is None
        assert cache.lookup(1) == ("a",)

    def test_disabled_cache(self):
        cache = DramReadCache(0)
        cache.insert(1, "a")
        assert cache.lookup(1) is None
        assert not cache.enabled

    def test_invalidate_range(self):
        cache = DramReadCache(8)
        for lpn in range(4):
            cache.insert(lpn, lpn)
        cache.invalidate(1, count=2)
        assert cache.lookup(0) == (0,)
        assert cache.lookup(1) is None
        assert cache.lookup(2) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DramReadCache(-1)


class TestDeviceIntegration:
    def test_repeat_read_hits_cache_and_is_faster(self, clock):
        ssd = cached_ssd(clock)
        ssd.write(5, "x")
        ssd.cache.clear()
        start = clock.now_us
        ssd.read(5)
        miss_cost = clock.now_us - start
        start = clock.now_us
        ssd.read(5)
        hit_cost = clock.now_us - start
        assert hit_cost < miss_cost
        assert ssd.cache.hits >= 1

    def test_write_updates_cache(self, clock):
        ssd = cached_ssd(clock)
        ssd.write(5, "v1")
        ssd.read(5)
        ssd.write(5, "v2")
        assert ssd.read(5) == "v2"

    def test_share_invalidates_destination(self, clock):
        ssd = cached_ssd(clock)
        ssd.write(1, "src")
        ssd.write(2, "old-dst")
        ssd.read(2)              # cache the old destination content
        ssd.share(2, 1)
        assert ssd.read(2) == "src"

    def test_share_batch_invalidates(self, clock):
        from repro.ftl.share_ext import SharePair
        ssd = cached_ssd(clock)
        ssd.write(1, "src")
        ssd.write(2, "old")
        ssd.read(2)
        ssd.share_batch([SharePair(2, 1)])
        assert ssd.read(2) == "src"

    def test_trim_invalidates(self, clock):
        from repro.errors import UnmappedPageError
        ssd = cached_ssd(clock)
        ssd.write(2, "x")
        ssd.read(2)
        ssd.trim(2)
        with pytest.raises(UnmappedPageError):
            ssd.read(2)

    def test_xftl_commit_invalidates(self, clock):
        ssd = cached_ssd(clock)
        ssd.write(2, "old")
        ssd.read(2)
        txn = ssd.begin_txn()
        ssd.write_txn(txn, 2, "new")
        assert ssd.read(2) == "old"   # pre-commit reads still old
        ssd.commit_txn(txn)
        assert ssd.read(2) == "new"

    def test_power_cycle_clears_cache(self, clock):
        ssd = cached_ssd(clock)
        ssd.write(2, "x")
        ssd.read(2)
        ssd.power_cycle()
        assert len(ssd.cache) == 0
        assert ssd.read(2) == "x"

    def test_cache_off_by_default(self, ssd):
        ssd.write(1, "x")
        ssd.read(1)
        ssd.read(1)
        assert ssd.cache.hits == 0
