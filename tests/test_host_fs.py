"""Unit tests for the host filesystem, file handles, and the share ioctl."""

import pytest

from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    IoctlError,
    NoSpace,
)
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.host.filesystem import FsConfig, HostFs, _runs
from repro.host.ioctl import share_file_ranges, share_ioctl
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

from conftest import small_ssd_config


@pytest.fixture
def fs(clock):
    ssd = Ssd(clock, small_ssd_config())
    return HostFs(ssd, FsConfig(journal_blocks=8))


class TestDirectory:
    def test_create_open(self, fs):
        f = fs.create("/db")
        assert fs.open("/db") is f
        assert fs.exists("/db")
        assert fs.list_files() == ["/db"]

    def test_create_duplicate_rejected(self, fs):
        fs.create("/db")
        with pytest.raises(FileExists):
            fs.create("/db")

    def test_open_missing_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.open("/missing")

    def test_unlink(self, fs):
        f = fs.create("/db")
        f.append_block("x")
        fs.unlink("/db")
        assert not fs.exists("/db")
        with pytest.raises(FileSystemError):
            f.pread_block(0)

    def test_unlink_missing_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.unlink("/missing")

    def test_unlink_trims_extents(self, fs):
        f = fs.create("/db")
        for i in range(5):
            f.append_block(i)
        trims_before = fs.ssd.stats.trim_commands
        fs.unlink("/db")
        assert fs.ssd.stats.trim_commands > trims_before

    def test_rename_replaces(self, fs):
        old = fs.create("/db")
        old.append_block("old")
        new = fs.create("/db.compact")
        new.append_block("new")
        fs.rename("/db.compact", "/db")
        assert fs.open("/db").pread_block(0) == "new"
        assert not fs.exists("/db.compact")


class TestFileIo:
    def test_append_and_read(self, fs):
        f = fs.create("/f")
        index = f.append_block("hello")
        assert index == 0
        assert f.pread_block(0) == "hello"
        assert f.block_count == 1

    def test_pwrite_in_place(self, fs):
        f = fs.create("/f")
        f.append_block("v1")
        f.pwrite_block(0, "v2")
        assert f.pread_block(0) == "v2"

    def test_pwrite_blocks_contiguous(self, fs):
        f = fs.create("/f")
        f.fallocate(4)
        f.pwrite_blocks(0, ["a", "b", "c", "d"])
        assert [f.pread_block(i) for i in range(4)] == ["a", "b", "c", "d"]

    def test_fallocate_reserves_without_writing(self, fs):
        f = fs.create("/f")
        writes_before = fs.ssd.stats.host_write_pages
        f.fallocate(10)
        assert f.block_count == 10
        assert fs.ssd.stats.host_write_pages == writes_before

    def test_fallocate_never_shrinks(self, fs):
        f = fs.create("/f")
        f.fallocate(10)
        f.fallocate(5)
        assert f.block_count == 10

    def test_truncate(self, fs):
        f = fs.create("/f")
        for i in range(6):
            f.append_block(i)
        f.truncate_blocks(2)
        assert f.block_count == 2
        with pytest.raises(FileSystemError):
            f.pread_block(2)

    def test_out_of_range_read_rejected(self, fs):
        f = fs.create("/f")
        with pytest.raises(FileSystemError):
            f.pread_block(0)

    def test_block_lpn_resolution(self, fs):
        f = fs.create("/f")
        f.append_block("x")
        lpn = f.block_lpn(0)
        assert fs.ssd.read(lpn) == "x"


class TestMetadataJournal:
    def test_fsync_after_growth_commits_metadata(self, fs):
        f = fs.create("/f")
        f.append_block("x")
        commits_before = fs.metadata_commits
        f.fsync()
        assert fs.metadata_commits == commits_before + 1

    def test_fsync_without_metadata_change_skips_journal(self, fs):
        f = fs.create("/f")
        f.append_block("x")
        f.fsync()
        commits = fs.metadata_commits
        f.pwrite_block(0, "y")  # data only, no metadata change
        f.fsync()
        assert fs.metadata_commits == commits

    def test_journal_writes_hit_device(self, fs):
        f = fs.create("/f")
        f.append_block("x")
        writes_before = fs.ssd.stats.host_write_pages
        f.fsync()
        per_commit = fs.config.metadata_pages_per_commit
        assert fs.ssd.stats.host_write_pages == writes_before + per_commit


class TestAllocation:
    def test_allocations_are_disjoint(self, fs):
        a = fs.allocate_blocks(10)
        b = fs.allocate_blocks(10)
        assert not set(a) & set(b)

    def test_unlink_recycles_blocks(self, fs):
        f = fs.create("/f")
        for i in range(4):
            f.append_block(i)
        free_before = fs.free_blocks
        fs.unlink("/f")
        assert fs.free_blocks == free_before + 4

    def test_recycled_blocks_are_reallocated(self, fs):
        f = fs.create("/f")
        for i in range(4):
            f.append_block(i)
        fs.unlink("/f")
        # Exhaust fresh space, then allocation must fall back to the
        # recycled pool instead of failing.
        fresh = fs.ssd.logical_pages - fs._alloc_cursor
        fs.allocate_blocks(fresh)
        reused = fs.allocate_blocks(4)
        assert len(reused) == 4

    def test_exhaustion_raises(self, clock):
        ssd = Ssd(clock, small_ssd_config())
        fs = HostFs(ssd, FsConfig(journal_blocks=8))
        with pytest.raises(NoSpace):
            fs.allocate_blocks(ssd.logical_pages)

    def test_runs_compression(self):
        assert _runs([1, 2, 3, 7, 8, 10]) == [(1, 3), (7, 2), (10, 1)]
        assert _runs([]) == []
        assert _runs([5]) == [(5, 1)]


class TestShareIoctl:
    def test_share_single_block(self, fs):
        src = fs.create("/src")
        src.append_block("payload")
        dst = fs.create("/dst")
        dst.fallocate(1)
        commands = share_ioctl(dst, 0, src, 0)
        assert commands == 1
        assert dst.pread_block(0) == "payload"

    def test_share_range(self, fs):
        src = fs.create("/src")
        for i in range(4):
            src.append_block(("d", i))
        dst = fs.create("/dst")
        dst.fallocate(4)
        share_ioctl(dst, 0, src, 0, length=4)
        for i in range(4):
            assert dst.pread_block(i) == ("d", i)

    def test_share_survives_source_unlink(self, fs):
        src = fs.create("/src")
        src.append_block("keep")
        dst = fs.create("/dst")
        dst.fallocate(1)
        share_ioctl(dst, 0, src, 0)
        fs.unlink("/src")
        assert dst.pread_block(0) == "keep"

    def test_share_file_ranges_batches(self, fs):
        src = fs.create("/src")
        for i in range(6):
            src.append_block(("d", i))
        dst = fs.create("/dst")
        dst.fallocate(6)
        commands = share_file_ranges(dst, src, [(0, 0, 3), (3, 3, 3)])
        assert commands >= 1
        for i in range(6):
            assert dst.pread_block(i) == ("d", i)

    def test_share_requires_capable_device(self, clock):
        config = SsdConfig(geometry=FlashGeometry.small(),
                           timing=FAST_TIMING, share_enabled=False)
        fs = HostFs(Ssd(clock, config), FsConfig(journal_blocks=8))
        src = fs.create("/src")
        src.append_block("x")
        dst = fs.create("/dst")
        dst.fallocate(1)
        with pytest.raises(IoctlError):
            share_ioctl(dst, 0, src, 0)

    def test_share_bad_length_rejected(self, fs):
        src = fs.create("/src")
        src.append_block("x")
        dst = fs.create("/dst")
        dst.fallocate(1)
        with pytest.raises(IoctlError):
            share_ioctl(dst, 0, src, 0, length=0)
        with pytest.raises(IoctlError):
            share_file_ranges(dst, src, [])
