"""benchspeed regression gate: baseline discovery, comparison logic,
scale resolution, and the record schema (no workloads run here — the
matrix itself is exercised by CI)."""

import json
import os

import pytest

from repro.bench.harness import Scale
from repro.tools.benchspeed import (_bench_record, bench_scale,
                                    compare_to_baseline, find_baseline)


def document(scale="tiny", total=1.0, benchmarks=()):
    return {"scale": scale, "total_wall_s": total,
            "benchmarks": list(benchmarks)}


class TestBenchRecord:
    def test_schema_and_rates(self):
        record = _bench_record("linkbench.share.off", operations=1000,
                              wall_s=0.5, virtual_tps=42.0,
                              events_fired=5000)
        assert record["name"] == "linkbench.share.off"
        assert record["sim_ops_per_s"] == pytest.approx(2000.0)
        assert record["events_per_s"] == pytest.approx(10000.0)
        assert record["virtual_tps"] == 42.0

    def test_zero_wall_does_not_divide(self):
        record = _bench_record("x", 10, 0.0, 1.0, 10)
        assert record["sim_ops_per_s"] == 0.0
        assert record["events_per_s"] == 0.0


class TestFindBaseline:
    def test_picks_highest_pr_number(self, tmp_path):
        for name in ("BENCH_pr4.json", "BENCH_pr6.json", "BENCH_pr5.json"):
            (tmp_path / name).write_text("{}")
        out = str(tmp_path / "BENCH_ci.json")
        assert find_baseline(out) == str(tmp_path / "BENCH_pr6.json")

    def test_never_gates_against_own_output(self, tmp_path):
        (tmp_path / "BENCH_pr5.json").write_text("{}")
        (tmp_path / "BENCH_pr6.json").write_text("{}")
        out = str(tmp_path / "BENCH_pr6.json")
        assert find_baseline(out) == str(tmp_path / "BENCH_pr5.json")

    def test_ignores_non_matching_names(self, tmp_path):
        (tmp_path / "BENCH_tmp.json").write_text("{}")
        (tmp_path / "notes.json").write_text("{}")
        assert find_baseline(str(tmp_path / "BENCH_ci.json")) is None

    def test_missing_directory(self, tmp_path):
        assert find_baseline(str(tmp_path / "nope" / "out.json")) is None


class TestCompare:
    def test_no_baseline_passes_with_note(self):
        ok, notes = compare_to_baseline(document(), None, 0.2)
        assert ok
        assert any("no baseline" in n for n in notes)

    def test_scale_mismatch_skips_comparison(self):
        ok, notes = compare_to_baseline(document(scale="tiny", total=99.0),
                                        document(scale="full", total=1.0),
                                        0.2)
        assert ok
        assert any("scale" in n for n in notes)

    def test_within_threshold_passes(self):
        ok, notes = compare_to_baseline(document(total=1.15),
                                        document(total=1.0), 0.2)
        assert ok
        assert any("1.15" in n for n in notes)

    def test_regression_beyond_threshold_fails(self):
        ok, notes = compare_to_baseline(document(total=1.3),
                                        document(total=1.0), 0.2)
        assert not ok
        assert any("REGRESSION" in n for n in notes)

    def test_improvement_passes(self):
        ok, __ = compare_to_baseline(document(total=0.5),
                                     document(total=1.0), 0.2)
        assert ok

    def test_per_benchmark_notes(self):
        current = document(benchmarks=[
            {"name": "ycsb.a.off", "wall_s": 0.4}])
        baseline = document(benchmarks=[
            {"name": "ycsb.a.off", "wall_s": 0.2}])
        __, notes = compare_to_baseline(current, baseline, 0.2)
        assert any("ycsb.a.off" in n and "2.00x" in n for n in notes)

    def test_baseline_without_total_skips(self):
        baseline = {"scale": "tiny", "benchmarks": []}
        ok, notes = compare_to_baseline(document(), baseline, 0.2)
        assert ok
        assert any("skipped" in n for n in notes)


class TestScaleResolution:
    def test_default_tiny(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() is Scale.TINY

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "QUICK")
        assert bench_scale() is Scale.QUICK

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()


class TestCommittedArtifact:
    def test_bench_pr6_artifact_is_valid(self):
        """The committed BENCH_pr6.json is the next PR's baseline — keep
        it carrying the fields the gate and the acceptance criteria
        read."""
        path = os.path.join(os.path.dirname(__file__), "..", "results",
                            "BENCH_pr6.json")
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["scale"] in ("tiny", "quick", "full")
        assert doc["total_wall_s"] > 0
        assert doc["peak_rss_mib"] > 0
        names = {b["name"] for b in doc["benchmarks"]}
        assert "linkbench.share.off" in names
        for bench in doc["benchmarks"]:
            assert bench["wall_s"] > 0
            assert bench["sim_ops_per_s"] > 0
        tel = doc["telemetry"]
        assert tel["wall_off_s"] > 0
        assert "overhead_full_pct" in tel and "overhead_sampled_pct" in tel
        # Sampled mode must cost measurably less than full telemetry.
        assert tel["sampled_vs_full_overhead_ratio"] < 1.0
        assert doc["profile"]["phases"]
