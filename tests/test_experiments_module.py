"""Smoke tests for the experiments module: printers render synthetic
results correctly, and the CLI end-to-end path works at TINY scale for
the cheapest experiment."""

import pytest

from repro.bench import experiments
from repro.bench.harness import Scale


def synthetic_linkbench_cells(metric="throughput_tps"):
    cells = {}
    for x in (4096, 8192):
        for mode in ("dwb_on", "share"):
            cells[(x, mode)] = {
                "throughput_tps": 100.0 if mode == "dwb_on" else 200.0,
                "host_write_pages": 1000 if mode == "dwb_on" else 500,
                "gc_events": 10,
                "copyback_pages": 50,
            }
    return cells


def test_print_fig5a_renders():
    text = experiments.print_fig5a(
        {"cells": synthetic_linkbench_cells(), "scale": "tiny"})
    assert "Figure 5(a)" in text
    assert "dwb_on" in text and "share" in text
    assert "4096" in text


def test_print_fig6_renders():
    result = {"rows": [{"paper_buffer_mib": 50, "mode": "share",
                        "host_write_pages": 500, "gc_events": 5,
                        "copyback_pages": 10}]}
    text = experiments.print_fig6(result)
    assert "Figure 6" in text
    assert "500" in text


def test_print_table1_renders():
    summary = {"mean": 1.0, "p25": 0.5, "p50": 0.9, "p75": 1.2,
               "p99": 5.0, "max": 9.0}
    result = {"cells": {"share": {"latency_table": {"Get_Node": summary}}}}
    text = experiments.print_table1(result)
    assert "Get_Node" in text
    assert "P99" in text


def test_print_fig7_and_fig8_render():
    cells = {}
    for batch in (1, 4):
        for mode in ("original", "share"):
            cells[(batch, mode)] = {
                "throughput_ops": 10.0, "written_mib": 5.0}
    fig7_text = experiments.print_fig7({"cells": cells})
    assert "Figure 7(a)" in fig7_text and "Figure 7(b)" in fig7_text
    fig8_text = experiments.print_fig8({"cells": cells})
    assert "Figure 8" in fig8_text


def test_print_table2_renders():
    rows = {"original": {"elapsed_seconds": 10.0, "written_mib": 100.0,
                         "read_mib": 50.0, "docs_moved": 5},
            "share": {"elapsed_seconds": 2.0, "written_mib": 10.0,
                      "read_mib": 50.0, "docs_moved": 5}}
    text = experiments.print_table2({"rows": rows})
    assert "Table 2" in text


def test_print_pgbench_renders():
    rows = {"on": {"throughput_tps": 100.0, "wal_mib": 10.0,
                   "wal_full_page_mib": 8.0, "wal_record_mib": 2.0}}
    text = experiments.print_pgbench({"rows": rows})
    assert "full_page_writes" in text


def test_cli_single_experiment(capsys):
    assert experiments.main(["--scale", "tiny", "--only", "pgbench"]) == 0
    out = capsys.readouterr().out
    assert "pgbench" in out
    assert "tps" in out


def test_pgbench_experiment_shape():
    result = experiments.pgbench_fpw(Scale.TINY)
    on = result["rows"]["on"]
    off = result["rows"]["off"]
    assert off["throughput_tps"] > on["throughput_tps"]
    assert off["wal_full_page_mib"] == 0.0
    assert on["wal_bytes"] > off["wal_bytes"]


def test_buffer_translation_monotone():
    from repro.bench.harness import buffer_pages_for
    small = buffer_pages_for(50, 10_000, 4096)
    large = buffer_pages_for(150, 10_000, 4096)
    assert large > small


def test_db_pages_estimate_scales():
    assert (experiments._estimate_db_pages(20_000, 32)
            > experiments._estimate_db_pages(10_000, 32))
    assert (experiments._estimate_db_pages(10_000, 16)
            > experiments._estimate_db_pages(10_000, 64))
