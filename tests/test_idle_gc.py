"""Tests for host-initiated background (idle) garbage collection."""

import random

import pytest

from repro.sim.clock import SimClock
from repro.ssd.device import Ssd

from conftest import small_ssd_config


def churned_ssd(clock):
    ssd = Ssd(clock, small_ssd_config())
    rng = random.Random(8)
    span = int(ssd.logical_pages * 0.7)
    for lpn in range(span):
        ssd.write(lpn, ("seed", lpn))
    for i in range(span):
        ssd.write(rng.randrange(span), ("w", i))
    return ssd, span


def test_idle_gc_reclaims_blocks(clock):
    ssd, __ = churned_ssd(clock)
    free_before = ssd.ftl.free_block_count
    reclaimed = ssd.idle_gc(max_blocks=4)
    assert reclaimed > 0
    # Net gain is positive even though evacuating valid pages consumes
    # some of the pool for the GC-active block.
    assert ssd.ftl.free_block_count > free_before


def test_idle_gc_respects_invalid_threshold(clock):
    ssd, __ = churned_ssd(clock)
    # A threshold of 1.0 only reclaims fully-invalid blocks.
    ssd.idle_gc(max_blocks=100, min_invalid_fraction=1.0)
    # Nothing with valid pages was touched: data intact.
    ssd.ftl.check_invariants()


def test_idle_gc_preserves_data(clock):
    ssd, span = churned_ssd(clock)
    before = {lpn: ssd.read(lpn) for lpn in range(0, span, 31)}
    ssd.idle_gc(max_blocks=8, min_invalid_fraction=0.3)
    for lpn, expected in before.items():
        assert ssd.read(lpn) == expected
    ssd.ftl.check_invariants()


def test_idle_gc_counts_as_gc_events(clock):
    ssd, __ = churned_ssd(clock)
    events_before = ssd.stats.gc_events
    reclaimed = ssd.idle_gc(max_blocks=3)
    assert ssd.stats.gc_events == events_before + reclaimed


def test_idle_gc_charges_time(clock):
    ssd, __ = churned_ssd(clock)
    start = clock.now_us
    ssd.idle_gc(max_blocks=4, min_invalid_fraction=0.2)
    assert clock.now_us > start


def test_idle_gc_reduces_foreground_stalls(clock):
    """The point of background GC: pre-reclaiming during idle time caps
    the worst-case foreground write latency."""
    from repro.sim.clock import SimClock
    rng_seed = 8

    def run(with_idle_gc):
        local = SimClock()
        ssd, span = churned_ssd(local)
        rng = random.Random(rng_seed)
        worst = 0
        for i in range(span * 2):
            if with_idle_gc and i % 50 == 0:
                ssd.idle_gc(max_blocks=2, min_invalid_fraction=0.4)
            start = local.now_us
            ssd.write(rng.randrange(span), ("fg", i))
            worst = max(worst, local.now_us - start)
        return worst

    assert run(True) <= run(False)


def test_idle_gc_validates_args(clock):
    ssd, __ = churned_ssd(clock)
    with pytest.raises(ValueError):
        ssd.idle_gc(max_blocks=0)
    with pytest.raises(ValueError):
        ssd.idle_gc(min_invalid_fraction=0.0)
