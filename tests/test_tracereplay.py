"""Tests for trace parsing, replay, and synthesis."""

import pytest

from repro.workloads.tracereplay import (
    ReplayResult,
    TraceFormatError,
    TraceOp,
    dump_trace,
    parse_trace,
    replay,
    synthesize_trace,
)


class TestParsing:
    def test_basic_ops(self):
        text = """
        # a comment
        W 10 2
        R 10
        S 100 10 2
        T 10 2
        F
        """
        ops = list(parse_trace(text.splitlines()))
        assert [op.kind for op in ops] == ["W", "R", "S", "T", "F"]
        assert ops[0].count == 2
        assert ops[1].count == 1
        assert ops[2].lpn == 100 and ops[2].src_lpn == 10

    def test_case_insensitive(self):
        ops = list(parse_trace(["w 1", "r 1"]))
        assert [op.kind for op in ops] == ["W", "R"]

    def test_inline_comments(self):
        ops = list(parse_trace(["W 5  # write page five"]))
        assert ops[0].lpn == 5

    def test_unknown_op_rejected(self):
        with pytest.raises(TraceFormatError):
            list(parse_trace(["X 1"]))

    def test_malformed_rejected(self):
        with pytest.raises(TraceFormatError):
            list(parse_trace(["W"]))
        with pytest.raises(TraceFormatError):
            list(parse_trace(["W abc"]))

    def test_roundtrip(self):
        ops = [TraceOp("W", lpn=1, count=2), TraceOp("S", lpn=9, count=3,
                                                     src_lpn=2),
               TraceOp("F")]
        assert list(parse_trace(dump_trace(ops).splitlines())) == ops


class TestReplay:
    def test_counts_and_effects(self, ssd):
        ops = list(parse_trace(["W 0 3", "R 0 2", "W 10", "S 20 10",
                                "T 0 1", "F"]))
        result = replay(ssd, ops)
        assert isinstance(result, ReplayResult)
        assert result.operations == 6
        assert result.host_write_pages == 4
        assert result.host_read_pages == 2
        assert result.share_pairs == 1
        assert result.elapsed_seconds > 0
        assert ssd.read(20) == ("trace", 10)
        assert not ssd.ftl.is_mapped(0)

    def test_replay_resets_counters(self, ssd):
        ssd.write(0, "pre-existing")
        result = replay(ssd, [TraceOp("W", lpn=1)])
        assert result.host_write_pages == 1

    def test_same_trace_two_devices_comparable(self, clock):
        from conftest import small_ssd_config
        from repro.ssd.device import Ssd
        from repro.sim.clock import SimClock
        trace = synthesize_trace(1000, 3000, seed=5)
        results = []
        for __ in range(2):
            device = Ssd(SimClock(), small_ssd_config())
            results.append(replay(device, trace))
        assert results[0] == results[1]  # fully deterministic


class TestSynthesis:
    def test_shape(self):
        ops = synthesize_trace(1000, 500, seed=1)
        assert len(ops) == 500
        assert all(op.kind in ("W", "R") for op in ops)
        assert all(0 <= op.lpn < 1000 for op in ops)

    def test_hot_skew(self):
        ops = synthesize_trace(1000, 4000, hot_fraction=0.2,
                               hot_access_fraction=0.8, seed=2)
        hot = sum(1 for op in ops if op.lpn < 200)
        assert hot > len(ops) * 0.7

    def test_write_fraction(self):
        ops = synthesize_trace(1000, 4000, write_fraction=0.3, seed=3)
        writes = sum(1 for op in ops if op.kind == "W")
        # Reads of never-written pages become writes, so expect a bit
        # above the nominal fraction.
        assert 0.25 < writes / len(ops) < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace(100, 10, write_fraction=1.5)
        with pytest.raises(ValueError):
            synthesize_trace(100, 10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            synthesize_trace(100, 10, hot_access_fraction=1.0)
