"""IoTrace ring-buffer keep modes: dropped-record accounting across
wrap boundaries, capacity-0 behaviour, the allocation-free
``record_fields`` hot path, IntervalTrace, and the interaction with
sampled telemetry mode."""

import pytest

from repro.obs import Telemetry
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd
from repro.ssd.trace import KEEP_MODES, IntervalTrace, IoTrace, TraceEvent

from conftest import small_ssd_config


def fill(trace, n, start=0):
    for i in range(start, start + n):
        trace.record_fields(timestamp_us=i * 10, kind="write", lpn=i,
                            count=1, latency_us=5)


class TestKeepOldest:
    def test_keeps_first_capacity_events(self):
        trace = IoTrace(4, keep="oldest")
        fill(trace, 10)
        assert len(trace) == 4
        assert [e.lpn for e in trace] == [0, 1, 2, 3]

    def test_dropped_counts_overflow_exactly(self):
        trace = IoTrace(4, keep="oldest")
        fill(trace, 10)
        assert trace.dropped == 6
        fill(trace, 3, start=10)
        assert trace.dropped == 9
        assert len(trace) == 4

    def test_no_drops_under_capacity(self):
        trace = IoTrace(8)
        fill(trace, 8)
        assert trace.dropped == 0
        assert len(trace) == 8


class TestKeepNewest:
    def test_keeps_last_capacity_events_in_order(self):
        trace = IoTrace(4, keep="newest")
        fill(trace, 10)
        assert len(trace) == 4
        assert [e.lpn for e in trace] == [6, 7, 8, 9]

    def test_dropped_counts_across_wrap_boundaries(self):
        trace = IoTrace(3, keep="newest")
        fill(trace, 3)
        assert trace.dropped == 0
        fill(trace, 1, start=3)           # first overwrite
        assert trace.dropped == 1
        fill(trace, 7, start=4)           # wraps the ring twice more
        assert trace.dropped == 8
        assert [e.lpn for e in trace] == [8, 9, 10]

    def test_order_preserved_mid_wrap(self):
        trace = IoTrace(4, keep="newest")
        fill(trace, 6)  # head sits mid-ring
        lpns = [e.lpn for e in trace]
        assert lpns == sorted(lpns) == [2, 3, 4, 5]

    def test_clear_resets_ring_and_dropped(self):
        trace = IoTrace(3, keep="newest")
        fill(trace, 7)
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0
        fill(trace, 2, start=20)
        assert [e.lpn for e in trace] == [20, 21]


class TestCapacityZero:
    @pytest.mark.parametrize("keep", KEEP_MODES)
    def test_drops_everything_without_error(self, keep):
        trace = IoTrace(0, keep=keep)
        fill(trace, 5)
        assert len(trace) == 0
        assert trace.dropped == 5
        assert list(trace) == []


class TestRecordFields:
    def test_events_materialize_lazily_with_defaults(self):
        trace = IoTrace(4)
        trace.record_fields(100, "share", lpn=7, count=2, latency_us=30)
        event = next(iter(trace))
        assert isinstance(event, TraceEvent)
        assert event.kind == "share" and event.lpn == 7
        assert event.arrival_us == 0 and event.wait_us == 0.0

    def test_queue_fields_round_trip(self):
        trace = IoTrace(4)
        trace.record_fields(100, "write", lpn=1, count=1, latency_us=40,
                            gc_events=2, copyback_pages=3,
                            arrival_us=55, wait_us=5.0)
        event = trace.events()[0]
        assert (event.arrival_us, event.wait_us) == (55, 5.0)
        assert (event.gc_events, event.copyback_pages) == (2, 3)

    def test_invalid_keep_mode_rejected(self):
        with pytest.raises(ValueError):
            IoTrace(4, keep="recent")


class TestIntervalTrace:
    def test_records_and_filters_by_channel(self):
        trace = IntervalTrace(8)
        trace.record(0, 0, 10)
        trace.record(1, 5, 25)
        trace.record(0, 10, 15)
        assert trace.channels() == [0, 1]
        assert trace.intervals(channel=0) == [(0, 0, 10), (0, 10, 15)]
        assert trace.busy_us() == 10 + 20 + 5
        assert trace.busy_us(channel=1) == 20

    def test_keep_newest_ring_with_dropped(self):
        trace = IntervalTrace(2)
        trace.record(0, 0, 1)
        trace.record(0, 1, 2)
        trace.record(0, 2, 3)
        assert len(trace) == 2
        assert trace.dropped == 1
        assert trace.intervals() == [(0, 1, 2), (0, 2, 3)]

    def test_capacity_zero_drops(self):
        trace = IntervalTrace(0)
        trace.record(0, 0, 5)
        assert len(trace) == 0 and trace.dropped == 1


class TestSampledModeInteraction:
    def test_ring_captures_every_command_while_histograms_sample(self):
        """The IoTrace is a forensic record: sampled mode thins metric
        histograms but never the ring — every completion lands in it."""
        telemetry = Telemetry(mode="sampled", sample_every=10)
        ssd = Ssd(SimClock(), small_ssd_config(trace=64),
                  telemetry=telemetry, name="dut")
        writes = 40
        for i in range(writes):
            ssd.write(i % ssd.logical_pages, i)
        recorded = [e for e in ssd.trace if e.kind == "write"]
        assert len(recorded) == writes
        snap = telemetry.metrics.snapshot()
        assert snap["device.dut.latency_us.write"]["count"] == writes // 10

    def test_ring_wrap_under_sampled_mode_keeps_counting_drops(self):
        telemetry = Telemetry(mode="sampled", sample_every=5)
        ssd = Ssd(SimClock(), small_ssd_config(trace=8),
                  telemetry=telemetry, name="dut")
        for i in range(30):
            ssd.write(i % ssd.logical_pages, i)
        assert len(ssd.trace) == 8
        assert ssd.trace.dropped >= 30 - 8
