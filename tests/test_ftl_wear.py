"""Tests for wear leveling: erase counts spread, data preserved, and the
knob actually changes behaviour."""

import random

import pytest

from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl


def make_ftl(wear_leveling=True, threshold=4):
    geo = FlashGeometry(page_size=4096, pages_per_block=16, block_count=48,
                        overprovision_ratio=0.2)
    nand = NandArray(geo)
    config = FtlConfig(map_block_count=4, wear_leveling=wear_leveling,
                       wear_delta_threshold=threshold)
    return nand, PageMappingFtl(nand, config)


def hot_cold_workload(ftl, rounds=40, seed=2):
    """Cold data fills half the space once; hot data churns forever."""
    rng = random.Random(seed)
    cold = ftl.logical_pages // 2
    hot = ftl.logical_pages // 8
    for lpn in range(cold):
        ftl.write(lpn, ("cold", lpn))
    for i in range(rounds * hot):
        lpn = cold + rng.randrange(hot)
        ftl.write(lpn, ("hot", i))
    return cold, hot


def test_wear_leveling_reduces_spread():
    __, leveled = make_ftl(wear_leveling=True, threshold=4)
    __, greedy = make_ftl(wear_leveling=False)
    hot_cold_workload(leveled)
    hot_cold_workload(greedy)
    leveled_summary = leveled.nand.wear_summary()
    greedy_summary = greedy.nand.wear_summary()
    leveled_spread = leveled_summary["max"] - leveled_summary["min"]
    greedy_spread = greedy_summary["max"] - greedy_summary["min"]
    assert leveled.stats.wear_level_moves > 0
    assert leveled_spread < greedy_spread


def test_wear_moves_preserve_data():
    __, ftl = make_ftl(wear_leveling=True, threshold=2)
    cold, hot = hot_cold_workload(ftl)
    assert ftl.stats.wear_level_moves > 0
    for lpn in range(0, cold, 17):
        assert ftl.read(lpn) == ("cold", lpn)
    ftl.check_invariants()


def test_wear_leveling_off_makes_no_moves():
    __, ftl = make_ftl(wear_leveling=False)
    hot_cold_workload(ftl)
    assert ftl.stats.wear_level_moves == 0


def test_wear_survives_recovery():
    nand, ftl = make_ftl(wear_leveling=True, threshold=2)
    cold, __ = hot_cold_workload(ftl, rounds=20)
    recovered = PageMappingFtl.recover(nand, ftl.config)
    for lpn in range(0, cold, 23):
        assert recovered.read(lpn) == ("cold", lpn)
    recovered.check_invariants()


def test_bad_threshold_rejected():
    with pytest.raises(ValueError):
        FtlConfig(wear_delta_threshold=0)
