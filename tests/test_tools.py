"""Tests for the CLI tools (microbench and inspector)."""

import pytest

from repro.tools.inspect import (
    SCENARIOS,
    build_device,
    format_report,
    gather_report,
    run_scenario,
)
from repro.tools.microbench import PATTERNS, MicrobenchResult, run_microbench


class TestMicrobench:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_every_pattern_runs(self, pattern):
        result = run_microbench(pattern, ops=400, block_count=64)
        assert isinstance(result, MicrobenchResult)
        assert result.operations == 400
        assert result.elapsed_seconds > 0
        assert result.iops > 0

    def test_reads_faster_than_writes(self):
        reads = run_microbench("randread", ops=500, block_count=64)
        writes = run_microbench("randwrite", ops=500, block_count=64)
        assert reads.iops > writes.iops

    def test_high_utilization_raises_waf(self):
        low = run_microbench("randwrite", ops=4000, utilization=0.3,
                             block_count=48)
        high = run_microbench("randwrite", ops=4000, utilization=0.9,
                              block_count=48)
        assert high.waf >= low.waf
        assert high.gc_events >= low.gc_events

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            run_microbench("bogus")
        with pytest.raises(ValueError):
            run_microbench("randread", utilization=0.99)

    def test_format_is_one_line(self):
        result = run_microbench("randread", ops=100, block_count=64)
        assert "\n" not in result.format()
        assert "IOPS" in result.format()

    def test_main_entrypoint(self, capsys):
        from repro.tools.microbench import main
        assert main(["--pattern", "randread", "--ops", "200",
                     "--blocks", "64"]) == 0
        assert "randread" in capsys.readouterr().out


class TestInspector:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_scenarios_run_and_report(self, scenario):
        ssd = build_device(block_count=64)
        run_scenario(ssd, scenario)
        ssd.ftl.check_invariants()
        report = gather_report(ssd)
        assert report["mapped_lpns"] > 0
        assert 0 < report["utilization"] <= 1.0
        assert report["share_table_capacity"] == 250
        assert sum(report["wear_histogram"].values()) \
            == ssd.config.geometry.block_count

    def test_share_heavy_uses_share_table(self):
        ssd = build_device(block_count=64)
        run_scenario(ssd, "share-heavy")
        report = gather_report(ssd)
        assert report["shared_physical_pages"] > 0
        assert report["share_table_used"] > 0

    def test_unknown_scenario_rejected(self):
        ssd = build_device(block_count=64)
        with pytest.raises(ValueError):
            run_scenario(ssd, "nope")

    def test_format_report(self):
        ssd = build_device(block_count=64)
        run_scenario(ssd, "overwrite")
        text = format_report(gather_report(ssd))
        assert "wear histogram" in text
        assert "utilization" in text

    def test_main_entrypoint(self, capsys):
        from repro.tools.inspect import main
        assert main(["--scenario", "overwrite", "--blocks", "64"]) == 0
        assert "device state" in capsys.readouterr().out
