"""Property-based tests: the FTL must behave exactly like a flat logical
address space (a dict) under any interleaving of writes, trims, shares,
and power failures — while its internal invariants hold."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl

LOGICAL_SPAN = 80  # stay well inside the tiny test geometry


def fresh_ftl(share_entries=8, policy="log"):
    geo = FlashGeometry(page_size=4096, pages_per_block=16, block_count=48,
                        overprovision_ratio=0.2)
    nand = NandArray(geo)
    config = FtlConfig(map_block_count=4,
                       share_table_entries=share_entries,
                       share_overflow_policy=policy)
    return nand, config, PageMappingFtl(nand, config)


op_strategy = st.one_of(
    st.tuples(st.just("write"), st.integers(0, LOGICAL_SPAN - 1),
              st.integers(0, 1000)),
    st.tuples(st.just("trim"), st.integers(0, LOGICAL_SPAN - 1),
              st.integers(1, 4)),
    st.tuples(st.just("share"), st.integers(0, LOGICAL_SPAN - 1),
              st.integers(0, LOGICAL_SPAN - 1)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
)


def apply_ops(ftl, model, ops):
    """Drive the FTL and a dict model through the same operations."""
    for kind, a, b in ops:
        if kind == "write":
            ftl.write(a, ("v", a, b))
            model[a] = ("v", a, b)
        elif kind == "trim":
            count = min(b, LOGICAL_SPAN - a)
            if count >= 1:
                ftl.trim(a, count)
                for lpn in range(a, a + count):
                    model.pop(lpn, None)
        elif kind == "share":
            if a == b:
                continue
            try:
                ftl.share(a, b)
            except ShareError:
                assert b not in model  # only unmapped sources may fail
                continue
            model[a] = model[b]
        elif kind == "flush":
            ftl.flush()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=1, max_size=120))
def test_ftl_matches_flat_address_space(ops):
    __, __, ftl = fresh_ftl()
    model = {}
    apply_ops(ftl, model, ops)
    ftl.check_invariants()
    for lpn in range(LOGICAL_SPAN):
        if lpn in model:
            assert ftl.read(lpn) == model[lpn]
        else:
            assert not ftl.is_mapped(lpn)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=1, max_size=80))
def test_recovery_reproduces_flushed_state(ops):
    nand, config, ftl = fresh_ftl()
    model = {}
    apply_ops(ftl, model, ops)
    ftl.flush()
    recovered = PageMappingFtl.recover(nand, config)
    recovered.check_invariants()
    for lpn in range(LOGICAL_SPAN):
        if lpn in model:
            assert recovered.read(lpn) == model[lpn]
        else:
            assert not recovered.is_mapped(lpn)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=1, max_size=60),
       st.sampled_from(["log", "copy"]))
def test_both_overflow_policies_are_equivalent_logically(ops, policy):
    __, __, ftl = fresh_ftl(share_entries=2, policy=policy)
    model = {}
    apply_ops(ftl, model, ops)
    ftl.check_invariants()
    for lpn, expected in model.items():
        assert ftl.read(lpn) == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=10, max_size=100),
       st.integers(0, 10_000))
def test_gc_pressure_never_corrupts(ops, seed):
    """Interleave the random ops with heavy churn so GC runs, then check
    the model still matches."""
    import random
    rng = random.Random(seed)
    __, __, ftl = fresh_ftl()
    model = {}
    for index, op in enumerate(ops):
        apply_ops(ftl, model, [op])
        if index % 5 == 0:
            for __ in range(30):
                lpn = rng.randrange(LOGICAL_SPAN)
                ftl.write(lpn, ("churn", lpn, index))
                model[lpn] = ("churn", lpn, index)
    ftl.check_invariants()
    for lpn, expected in model.items():
        assert ftl.read(lpn) == expected
