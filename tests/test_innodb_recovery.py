"""The crash-safety matrix of DESIGN.md for MySQL/InnoDB: torn pages,
doublewrite repair, SHARE-mode recovery, and redo replay."""

import pytest

from repro.errors import PowerFailure, TornPageError
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.innodb.recovery import recover
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.ssd.device import Ssd, SsdConfig


def make_engine(mode, faults=None):
    faults = faults or FaultPlan()
    clock = SimClock()
    geo = FlashGeometry(page_size=4096, pages_per_block=64, block_count=256,
                        overprovision_ratio=0.1)
    data = Ssd(clock, SsdConfig(geometry=geo, timing=FAST_TIMING,
                                ftl=FtlConfig()), faults=faults)
    log = Ssd(clock, SsdConfig(geometry=FlashGeometry(
        page_size=4096, pages_per_block=64, block_count=128),
        timing=FAST_TIMING, share_enabled=False))
    engine = InnoDBEngine(mode, data, log, InnoDBConfig(
        buffer_pool_pages=32, flush_batch_pages=16), faults=faults)
    return faults, data, log, engine


def fill(engine, ops=1500, keys=800):
    engine.create_table("t")
    for i in range(ops):
        with engine.transaction() as txn:
            txn.put("t", i % keys, ("row", i))


def expected_rows(ops=1500, keys=800):
    rows = {}
    for i in range(ops):
        rows[i % keys] = ("row", i)
    return rows


class TestCleanRestart:
    @pytest.mark.parametrize("mode", list(FlushMode))
    def test_committed_data_survives(self, mode):
        __, data, log, engine = make_engine(mode)
        fill(engine)
        engine2, report = recover(mode, data, log)
        assert report.clean
        rows = expected_rows()
        for key in range(0, 800, 13):
            assert engine2.table("t").get(key) == rows[key]


class TestTornPage:
    def test_dwb_on_repairs_torn_page(self):
        faults, data, log, engine = make_engine(FlushMode.DWB_ON)
        fill(engine, ops=400)
        # Kill power during the 5th home write of the next flush: the DWB
        # copy is already durable, so recovery must repair the torn page.
        faults.arm(PowerFailAfter("innodb.torn_window", nth=5))
        with pytest.raises(PowerFailure):
            fill_more(engine, 2000)
        faults.disarm()
        engine2, report = recover(FlushMode.DWB_ON, data, log)
        assert report.torn_pages_found
        assert report.pages_repaired_from_dwb == report.torn_pages_found
        assert report.clean

    def test_dwb_off_loses_torn_page(self):
        faults, data, log, engine = make_engine(FlushMode.DWB_OFF)
        fill(engine, ops=400)
        faults.arm(PowerFailAfter("innodb.torn_window", nth=5))
        with pytest.raises(PowerFailure):
            fill_more(engine, 2000)
        faults.disarm()
        with pytest.raises(TornPageError):
            recover(FlushMode.DWB_OFF, data, log)
        # Non-strict recovery reports the damage instead of raising.
        data.power_cycle()
        log.power_cycle()

    def test_share_mode_never_tears_home_pages(self):
        # SHARE has no second write: the torn window is never entered for
        # home locations, so no torn page can exist.
        faults, data, log, engine = make_engine(FlushMode.SHARE)
        fill(engine, ops=2500)
        assert faults.hits("innodb.torn_window") == 0
        engine2, report = recover(FlushMode.SHARE, data, log)
        assert not report.torn_pages_found
        assert report.clean


class TestCrashWindows:
    def test_crash_after_dwb_stage_recovers(self):
        faults, data, log, engine = make_engine(FlushMode.DWB_ON)
        fill(engine, ops=400)
        faults.arm(PowerFailAfter("innodb.home_write", nth=1))
        with pytest.raises(PowerFailure):
            fill_more(engine, 2000)
        faults.disarm()
        engine2, report = recover(FlushMode.DWB_ON, data, log)
        assert report.clean

    def test_crash_before_share_remap_recovers(self):
        faults, data, log, engine = make_engine(FlushMode.SHARE)
        fill(engine, ops=400)
        faults.arm(PowerFailAfter("innodb.share_remap", nth=1))
        with pytest.raises(PowerFailure):
            fill_more(engine, 2000)
        faults.disarm()
        engine2, report = recover(FlushMode.SHARE, data, log)
        assert report.clean

    def test_crash_mid_share_commit_recovers(self):
        faults, data, log, engine = make_engine(FlushMode.SHARE)
        fill(engine, ops=400)
        faults.arm(PowerFailAfter("maplog.before_commit", nth=3))
        with pytest.raises(PowerFailure):
            fill_more(engine, 4000)
        faults.disarm()
        engine2, report = recover(FlushMode.SHARE, data, log)
        assert report.clean


class TestRedoReplay:
    @pytest.mark.parametrize("mode", [FlushMode.DWB_ON, FlushMode.SHARE])
    def test_all_committed_transactions_replayed(self, mode):
        __, data, log, engine = make_engine(mode)
        fill(engine, ops=800, keys=200)
        engine2, report = recover(mode, data, log)
        assert report.records_replayed == 800
        rows = expected_rows(ops=800, keys=200)
        for key, value in rows.items():
            assert engine2.table("t").get(key) == value

    def test_engine_usable_after_recovery(self):
        __, data, log, engine = make_engine(FlushMode.SHARE)
        fill(engine, ops=300)
        engine2, __ = recover(FlushMode.SHARE, data, log)
        with engine2.transaction() as txn:
            txn.put("t", 9999, "post-recovery")
        engine3, __ = recover(FlushMode.SHARE, data, log)
        assert engine3.table("t").get(9999) == "post-recovery"


def fill_more(engine, ops):
    for i in range(ops):
        with engine.transaction() as txn:
            txn.put("t", i % 800, ("more", i))
