"""Setup shim so `pip install -e .` works with the offline, wheel-less
toolchain in the reproduction environment (legacy editable install)."""

from setuptools import setup

setup()
