"""Table 2: effect of SHARE on Couchbase compaction.

Paper shape: SHARE-based compaction completes 3.1x faster and writes
7.5x fewer bytes (1126.4 MB -> 150.6 MB); the residual cost is reading
each valid document's header page to learn its length.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import table2


def test_table2_compaction(benchmark, scale):
    result = run_once(benchmark, lambda: table2(scale))
    print()
    print(experiments.print_table2(result))
    original = result["rows"]["original"]
    share = result["rows"]["share"]
    time_gain = original["elapsed_seconds"] / share["elapsed_seconds"]
    byte_gain = original["written_bytes"] / share["written_bytes"]
    print(f"\nelapsed {time_gain:.2f}x faster, "
          f"{byte_gain:.2f}x fewer bytes written "
          f"(paper: 3.1x / 7.5x)")
    assert time_gain > 2.0
    assert byte_gain > 4.0
    # Both algorithms move every document.
    assert original["docs_moved"] == share["docs_moved"]
    # SHARE still reads every document's header page.
    assert share["read_mib"] > 0
    # The time improvement is smaller than the byte improvement — the
    # paper explains this with the residual header reads.
    assert time_gain < byte_gain
