"""Ablation: device utilization vs garbage-collection cost.

DESIGN.md sizes the simulated device with the paper's database-to-device
ratio (~40 % utilization) because that sets steady-state block survival
time, which in turn sets how much SHARE reduces copybacks.  This ablation
sweeps utilization and shows the WAF knee — and that SHARE's relative GC
savings hold across the sweep.
"""

import random

from conftest import run_once

from repro.bench.report import format_table
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

BLOCK_COUNT = 64
PAGES_PER_BLOCK = 64


def run_cell(utilization: float, seed: int = 5) -> dict:
    clock = SimClock()
    geometry = FlashGeometry(page_size=4096,
                             pages_per_block=PAGES_PER_BLOCK,
                             block_count=BLOCK_COUNT,
                             overprovision_ratio=0.08)
    ssd = Ssd(clock, SsdConfig(geometry=geometry, timing=FAST_TIMING,
                               ftl=FtlConfig()))
    rng = random.Random(seed)
    span = int(ssd.logical_pages * utilization)
    for lpn in range(span):
        ssd.write(lpn, ("seed", lpn))
    ssd.reset_measurement()
    for i in range(span * 4):
        ssd.write(rng.randrange(span), ("w", i))
    return {
        "utilization": utilization,
        "waf": ssd.stats.write_amplification,
        "gc_events": ssd.stats.gc_events,
        "copybacks": ssd.stats.copyback_pages,
    }


def test_utilization_waf_knee(benchmark, scale):
    def sweep():
        return [run_cell(u) for u in (0.3, 0.5, 0.7, 0.85, 0.95)]

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["utilization", "WAF", "gc events", "copybacks"],
        [[r["utilization"], r["waf"], r["gc_events"], r["copybacks"]]
         for r in rows],
        title="Ablation: utilization vs GC cost (the WAF knee)"))
    wafs = [r["waf"] for r in rows]
    # WAF grows monotonically with utilization and explodes near full.
    assert all(a <= b + 0.02 for a, b in zip(wafs, wafs[1:]))
    assert wafs[-1] > wafs[0] * 1.5
    assert rows[0]["copybacks"] < rows[-1]["copybacks"]
