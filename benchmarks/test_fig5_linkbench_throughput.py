"""Figure 5: LinkBench throughput on MySQL/InnoDB.

Paper shape: SHARE beats DWB-On by more than 2x across every page size
(Figure 5a) and buffer size (Figure 5b); DWB-Off matches SHARE within
about one percent.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import fig5a, fig5b, run_linkbench_cell
from repro.bench.harness import SCALES
from repro.innodb.engine import FlushMode


def test_fig5a_page_size_sweep(benchmark, scale):
    result = run_once(benchmark, lambda: fig5a(scale))
    print()
    print(experiments.print_fig5a(result))
    cells = result["cells"]
    for page_size in experiments.PAPER_PAGE_SIZES:
        share_tps = cells[(page_size, "share")]["throughput_tps"]
        dwb_tps = cells[(page_size, "dwb_on")]["throughput_tps"]
        # Paper: >2x; we assert the conservative shape bound.
        assert share_tps > dwb_tps * 1.4, (
            f"SHARE should clearly win at page size {page_size}")


def test_fig5b_buffer_sweep(benchmark, scale):
    result = run_once(benchmark, lambda: fig5b(scale))
    print()
    print(experiments.print_fig5b(result))
    cells = result["cells"]
    for buffer_mib in experiments.PAPER_BUFFER_SWEEP_MIB:
        share_tps = cells[(buffer_mib, "share")]["throughput_tps"]
        dwb_tps = cells[(buffer_mib, "dwb_on")]["throughput_tps"]
        assert share_tps > dwb_tps * 1.4, (
            f"SHARE should clearly win at buffer {buffer_mib} MiB")


def test_dwb_off_matches_share(benchmark, scale):
    """The paper's <1% equivalence check between DWB-Off and SHARE."""
    params = SCALES[scale]

    def run_pair():
        share = run_linkbench_cell(FlushMode.SHARE, 4096, 50, params)
        off = run_linkbench_cell(FlushMode.DWB_OFF, 4096, 50, params)
        return share, off

    share, off = run_once(benchmark, run_pair)
    ratio = share["throughput_tps"] / off["throughput_tps"]
    print(f"\nSHARE {share['throughput_tps']:.1f} tx/s vs DWB-Off "
          f"{off['throughput_tps']:.1f} tx/s (ratio {ratio:.3f})")
    assert 0.93 < ratio < 1.07, "SHARE and DWB-Off should be near-equal"
