"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures at a
configurable scale (REPRO_BENCH_SCALE = tiny | quick | full; default
tiny so `pytest benchmarks/ --benchmark-only` completes in minutes) and
asserts the paper's *shape*: who wins, by roughly what factor, and where
the trends point.  The printed report is the same rows/series the paper
shows.
"""

import os

import pytest

from repro.bench.harness import Scale


def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    return Scale(name)


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are internally deterministic (virtual clock), so
    repeated rounds only re-measure wall time of the simulation itself.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
