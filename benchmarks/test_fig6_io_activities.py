"""Figure 6: I/O activities inside the SSD while running LinkBench.

Paper shape: SHARE reduces host page writes by ~45 % (the reduction is
bounded below 50 % by filesystem metadata traffic), GC events by ~55 %,
and copyback pages by ~75 %, across every buffer size.
"""

from pathlib import Path

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import fig5b, fig6, linkbench_telemetry


def test_fig6_io_counters(benchmark, scale):
    base = run_once(benchmark, lambda: fig5b(scale))
    result = fig6(scale, fig5b_result=base)
    print()
    print(experiments.print_fig6(result))
    by_buffer = {}
    for row in result["rows"]:
        by_buffer.setdefault(row["paper_buffer_mib"], {})[row["mode"]] = row
    for buffer_mib, modes in by_buffer.items():
        dwb = modes["dwb_on"]
        share = modes["share"]
        write_ratio = share["host_write_pages"] / dwb["host_write_pages"]
        assert 0.45 < write_ratio < 0.60, (
            f"host writes should roughly halve at {buffer_mib} MiB "
            f"(got {write_ratio:.2f})")
        assert share["gc_events"] < dwb["gc_events"], (
            f"GC events should drop at {buffer_mib} MiB")
        assert share["copyback_pages"] < dwb["copyback_pages"] * 0.6, (
            f"copybacks should drop sharply at {buffer_mib} MiB")


def test_fig6_reduction_cascade(benchmark, scale):
    """The paper's observation chain: write reduction -> larger GC-event
    reduction -> even larger copyback reduction."""
    base = run_once(benchmark, lambda: fig5b(scale))
    cells = base["cells"]
    write_red = []
    gc_red = []
    cb_red = []
    for buffer_mib in experiments.PAPER_BUFFER_SWEEP_MIB:
        dwb = cells[(buffer_mib, "dwb_on")]
        share = cells[(buffer_mib, "share")]
        write_red.append(1 - share["host_write_pages"] / dwb["host_write_pages"])
        gc_red.append(1 - share["gc_events"] / max(1, dwb["gc_events"]))
        cb_red.append(1 - share["copyback_pages"]
                      / max(1, dwb["copyback_pages"]))
    mean = lambda xs: sum(xs) / len(xs)
    print(f"\nmean reductions: writes {mean(write_red):.0%}, "
          f"GC {mean(gc_red):.0%}, copybacks {mean(cb_red):.0%} "
          f"(paper: 45% / 55% / 75%)")
    assert mean(gc_red) > mean(write_red) * 0.9
    assert mean(cb_red) > mean(gc_red) * 0.9


def test_fig6_telemetry_artifact(benchmark, scale):
    """End-to-end telemetry: an instrumented LinkBench run writes a JSONL
    artifact under results/ from which the report CLI reproduces the
    Figure-6 activity breakdown with per-span GC attribution."""
    from repro.tools import report

    out = Path(__file__).resolve().parent.parent / "results" \
        / "fig6_telemetry.jsonl"
    cell = run_once(benchmark, lambda: linkbench_telemetry(
        scale, jsonl_path=str(out)))
    assert out.exists()
    records = report.load(str(out))
    spans = [r for r in records if r.get("type") == "span"]
    snapshots = [r for r in records if r.get("type") == "metrics"]
    assert spans and snapshots

    # The final snapshot agrees with the cell's own device counters.
    metrics = report.last_metrics(records)
    assert metrics["device.data.host_write_pages"] == \
        cell["host_write_pages"]

    # Figure-6 breakdown renders with live host-write and GC bars.
    labels, values = report.activity_breakdown(metrics)
    table = dict(zip(labels, values))
    assert table["host writes (pages)"] > 0
    text = report.render(records)
    print()
    print(text)
    assert "I/O activities" in text
    assert "Latency distributions" in text

    # Every GC event attributes through the span tree to a host-level
    # root operation (nothing orphaned at ftl.gc itself).
    attribution = report.gc_attribution(records)
    if metrics.get("ftl.gc.events", 0):
        assert attribution
        assert "ftl.gc" not in attribution
        assert sum(attribution.values()) == metrics["ftl.gc.events"]
