"""Extension: L2P mapping-strategy lab (footprint vs fragmentation).

The tentpole refactor put the forward map behind a strategy interface
with four backings: the flat array default, GFTL-style per-group tables,
CCFTL-style run-length extents, and a page-differential delta encoding.
This lab runs each backing over three device workloads —

* ``seq``    — one sequential fill of 60% of the address space,
* ``rand``   — the fill plus random overwrites of a hot span,
* ``share``  — the fill plus a SHARE-heavy phase remapping scattered
  sources into fresh destinations (the paper's checkpoint pattern),

and records the modeled device-DRAM footprint, fragment count, SHARE
remap splits, splits-per-pair, WAF, and raw simulation speed to
``results/mapping_lab.jsonl`` (read back by
``python -m repro.tools.report --section mapping``).

Shape asserted: every backing rebuilds the same logical mapping (equal
mapped counts and read-back agreement on probes); the compact backings
beat the flat array's footprint on the sequential fill; run-length
extents pay measurable SHARE fragmentation (splits per pair) that the
flat array never does; and the flat default's footprint is workload-
independent.
"""

import json
import random
from pathlib import Path
from time import perf_counter

from conftest import run_once

from repro.flash.geometry import FlashGeometry
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import STRATEGY_NAMES
from repro.ssd.device import Ssd, SsdConfig
from repro.sim.clock import SimClock

WORKLOADS = ("seq", "rand", "share")
FILL_FRACTION = 0.6
GROUP_PAGES = 64
SEED = 0x10AB


def _build(strategy: str) -> Ssd:
    geometry = FlashGeometry(page_size=4096, pages_per_block=64,
                             block_count=64, overprovision_ratio=0.12)
    return Ssd(SimClock(), SsdConfig(
        geometry=geometry,
        ftl=FtlConfig(map_block_count=5,
                      l2p_strategy=strategy,
                      l2p_group_pages=GROUP_PAGES)))


def _drive(ssd: Ssd, workload: str):
    """Run one workload; returns (ops, share_pairs) executed."""
    rng = random.Random(SEED)
    span = int(ssd.logical_pages * FILL_FRACTION)
    ops = 0
    pairs = 0
    for lpn in range(span):
        ssd.write(lpn, ("base", lpn))
        ops += 1
    if workload == "rand":
        hot = max(64, span // 4)
        for i in range(span):
            ssd.write(rng.randrange(hot), ("hot", i))
            ops += 1
    elif workload == "share":
        free_span = ssd.logical_pages - span
        for i in range(span):
            dst = span + (i % free_span)
            src = rng.randrange(span)
            if dst == src:
                continue
            ssd.share(dst, src)
            ops += 1
            pairs += 1
    return ops, pairs


def _run_cell(strategy: str, workload: str):
    ssd = _build(strategy)
    start = perf_counter()
    ops, pairs = _drive(ssd, workload)
    elapsed = perf_counter() - start
    ssd.ftl.check_invariants()
    fwd = ssd.ftl.fwd
    return {
        "type": "mapping_lab",
        "strategy": strategy,
        "workload": workload,
        "ops": ops,
        "share_pairs": pairs,
        "mapped_lpns": fwd.mapped_count,
        "footprint_bytes": fwd.footprint_bytes(),
        "fragments": fwd.fragment_count(),
        "remap_splits": fwd.remap_splits,
        "splits_per_pair": (fwd.remap_splits / pairs) if pairs else 0.0,
        "waf": ssd.stats.write_amplification,
        "wall_kops_per_s": (ops / elapsed / 1e3) if elapsed > 0 else 0.0,
        "probe": [(lpn, ssd.read(lpn))
                  for lpn in range(0, ssd.logical_pages, 97)
                  if ssd.ftl.is_mapped(lpn)],
    }


def test_mapping_strategy_lab(benchmark):
    def sweep():
        return [_run_cell(strategy, workload)
                for workload in WORKLOADS
                for strategy in sorted(STRATEGY_NAMES)]

    rows = run_once(benchmark, sweep)

    out = Path(__file__).resolve().parent.parent / "results" \
        / "mapping_lab.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(
                {k: v for k, v in row.items() if k != "probe"}) + "\n")

    cells = {(row["workload"], row["strategy"]): row for row in rows}
    print()
    for workload in WORKLOADS:
        for strategy in sorted(STRATEGY_NAMES):
            row = cells[(workload, strategy)]
            print(f"{workload:>5} / {strategy:>9}: "
                  f"{row['footprint_bytes']:>8} B, "
                  f"{row['fragments']:>5} frags, "
                  f"{row['remap_splits']:>5} remap splits "
                  f"({row['splits_per_pair']:.3f}/pair), "
                  f"WAF {row['waf']:.3f}, "
                  f"{row['wall_kops_per_s']:.1f} kops/s")

    for workload in WORKLOADS:
        flat = cells[(workload, "flat")]
        for strategy in sorted(STRATEGY_NAMES):
            row = cells[(workload, strategy)]
            # Same logical state regardless of backing: equal mapped
            # counts, identical read-back on the probe LPNs, same WAF
            # (the backing never changes what hits the media).
            assert row["mapped_lpns"] == flat["mapped_lpns"], (
                workload, strategy)
            assert row["probe"] == flat["probe"], (workload, strategy)
            assert abs(row["waf"] - flat["waf"]) < 1e-9, (
                workload, strategy)

    # The flat array is workload-oblivious: fixed footprint, no splits.
    flat_footprints = {cells[(w, "flat")]["footprint_bytes"]
                       for w in WORKLOADS}
    assert len(flat_footprints) == 1
    assert all(cells[(w, "flat")]["remap_splits"] == 0 for w in WORKLOADS)

    # Compact backings win the sequential fill on footprint.
    flat_seq = cells[("seq", "flat")]["footprint_bytes"]
    for strategy in ("group", "runlength", "delta"):
        assert cells[("seq", strategy)]["footprint_bytes"] < flat_seq, (
            strategy, cells[("seq", strategy)]["footprint_bytes"], flat_seq)

    # SHARE fragments the compact layouts: run-length pays splits per
    # pair, and random sources cost it more footprint than the clean
    # sequential fill.
    share_rl = cells[("share", "runlength")]
    assert share_rl["remap_splits"] > 0
    assert share_rl["splits_per_pair"] > 0.5
    assert (share_rl["footprint_bytes"]
            > cells[("seq", "runlength")]["footprint_bytes"])
    assert cells[("share", "delta")]["remap_splits"] > 0
