"""Section 5.3.1 in-text experiment: PostgreSQL full_page_writes.

Paper shape: with full_page_writes off, pgbench throughput roughly
doubles, and the WAL volume shrinks by approximately the amount of data
pages that were being embedded in it.  (SHARE would let PostgreSQL turn
the option off safely.)
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import pgbench_fpw


def test_pgbench_full_page_writes(benchmark, scale):
    result = run_once(benchmark, lambda: pgbench_fpw(scale))
    print()
    print(experiments.print_pgbench(result))
    on = result["rows"]["on"]
    off = result["rows"]["off"]
    speedup = off["throughput_tps"] / on["throughput_tps"]
    print(f"\nthroughput gain with fpw off: {speedup:.2f}x (paper: ~2x)")
    assert speedup > 1.4
    # WAL shrinks by roughly the full-page-image volume.
    shrink = on["wal_bytes"] - off["wal_bytes"]
    assert shrink > on["wal_full_page_mib"] * 1024 * 1024 * 0.8
    assert off["wal_full_page_mib"] == 0.0
