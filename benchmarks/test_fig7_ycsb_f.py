"""Figure 7: YCSB workload-F on Couchbase.

Paper shape: (a) SHARE outperforms original Couchbase by 3.45x at batch
size 1, narrowing to 1.96x at batch size 256; (b) SHARE's written volume
is almost constant across batch sizes while the original's falls with
batching, so the written-data gap narrows from 7.86x to 1.64x.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import PAPER_BATCH_SIZES, fig7


def _ratios(cells, field):
    out = {}
    for batch in PAPER_BATCH_SIZES:
        original = cells[(batch, "original")][field]
        share = cells[(batch, "share")][field]
        out[batch] = (original, share)
    return out


def test_fig7a_throughput(benchmark, scale):
    result = run_once(benchmark, lambda: fig7(scale))
    print()
    print(experiments.print_fig7(result))
    cells = result["cells"]
    for batch in PAPER_BATCH_SIZES:
        share_ops = cells[(batch, "share")]["throughput_ops"]
        original_ops = cells[(batch, "original")]["throughput_ops"]
        assert share_ops > original_ops, (
            f"SHARE must win at batch size {batch}")
    # The gap shrinks as batching amortises the wandering tree.
    gap_small = (cells[(1, "share")]["throughput_ops"]
                 / cells[(1, "original")]["throughput_ops"])
    gap_large = (cells[(256, "share")]["throughput_ops"]
                 / cells[(256, "original")]["throughput_ops"])
    print(f"\nthroughput gap: {gap_small:.2f}x at batch 1 -> "
          f"{gap_large:.2f}x at batch 256 (paper: 3.45x -> 1.96x)")
    assert gap_small > gap_large
    assert gap_small > 1.8


def test_fig7b_written_data(benchmark, scale):
    result = run_once(benchmark, lambda: fig7(scale))
    cells = result["cells"]
    share_volumes = [cells[(b, "share")]["written_bytes"]
                     for b in PAPER_BATCH_SIZES]
    # SHARE's volume is almost constant regardless of batch size.
    spread = max(share_volumes) / min(share_volumes)
    assert spread < 1.10, f"SHARE written volume should be flat: {spread:.2f}"
    # The original's volume falls with batch size.
    original_volumes = [cells[(b, "original")]["written_bytes"]
                        for b in PAPER_BATCH_SIZES]
    assert sorted(original_volumes, reverse=True) == original_volumes
    gap_small = original_volumes[0] / share_volumes[0]
    gap_large = original_volumes[-1] / share_volumes[-1]
    print(f"\nwritten-data gap: {gap_small:.2f}x at batch 1 -> "
          f"{gap_large:.2f}x at batch 256 (paper: 7.86x -> 1.64x)")
    assert gap_small > 3.0
    assert 1.1 < gap_large < gap_small
