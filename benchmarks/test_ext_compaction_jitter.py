"""Extension: foreground stalls from background compaction.

Section 3.3: "Given that all write transactions in most key-value stores
slow down during database compaction, it is crucial to complete
compaction as fast as possible."  This benchmark runs YCSB-F with
auto-compaction (the store compacts itself whenever its stale ratio
crosses the threshold) and compares the throughput-over-time series:
each compaction is a stall, and SHARE's zero-copy compaction makes the
stalls several times shorter — restoring foreground throughput sooner.
"""

from conftest import run_once

from repro.bench.harness import build_couch_stack
from repro.bench.report import format_table
from repro.couchstore.engine import CommitMode, CouchConfig
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload

RECORDS = 6_000
OPS = 24_000
BATCH = 16


def run_mode(mode: CommitMode) -> dict:
    stack = build_couch_stack(
        mode, RECORDS, OPS * 2,
        config=CouchConfig(compaction_stale_ratio=0.55))
    driver = YcsbDriver(stack.store, stack.clock,
                        YcsbConfig(record_count=RECORDS))
    driver.load()
    stack.ssd.reset_measurement()
    stack.clock.reset()
    result = driver.run(YcsbWorkload.F, OPS, batch_size=BATCH,
                        auto_compact=True, record_timeline=True)
    windows = result.windowed_throughput(window_seconds=1.0)
    median = sorted(windows)[len(windows) // 2]
    worst = min(windows)
    stall_total = sum(elapsed for __, elapsed in result.compactions)
    return {
        "mode": mode.value,
        "throughput": result.throughput_ops,
        "compactions": len(result.compactions),
        "stall_total_s": stall_total,
        "stall_mean_s": (stall_total / len(result.compactions)
                         if result.compactions else 0.0),
        "worst_window_frac": worst / median if median else 0.0,
    }


def test_compaction_stalls(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: {m: run_mode(m) for m in CommitMode})
    print()
    print(format_table(
        ["mode", "ops/s", "compactions", "total stall s", "mean stall s",
         "worst/median window"],
        [[r["mode"], r["throughput"], r["compactions"],
          r["stall_total_s"], r["stall_mean_s"], r["worst_window_frac"]]
         for r in rows.values()],
        title="Extension: auto-compaction stalls under YCSB-F "
              "(Section 3.3)"))
    original = rows[CommitMode.ORIGINAL]
    share = rows[CommitMode.SHARE]
    assert original["compactions"] >= 1
    assert share["compactions"] >= 1
    # Zero-copy compaction stalls the foreground for far less time.
    assert share["stall_mean_s"] < original["stall_mean_s"] * 0.5
    assert share["throughput"] > original["throughput"]
