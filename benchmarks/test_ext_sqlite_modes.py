"""Extension (paper Sections 3.3 and 7): SQLite on SHARE.

The paper predicts SQLite "can simply turn [journaling] off, because
SHARE supports transactional atomicity and durability at the storage
level".  This benchmark compares the SQLite-like engine's three journal
modes under an update-heavy workload.

Expected shape: SHARE mode writes roughly half the pages of rollback
journaling (no before-images, no journal-header churn) and beats WAL
(no checkpoint re-copy), at equal crash safety (see
tests/test_sqlitelike.py's crash matrix).  The X-FTL baseline
(Section 6.2) lands at SHARE's level — the two differ in interface
(device transactions vs explicit remapping), not in write volume.
"""

from conftest import run_once

from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.ssd.device import Ssd, SsdConfig
from repro.bench.report import format_table

OPS = 4_000
KEYS = 800
PAGES = 4_096


def run_mode(mode: JournalMode) -> dict:
    clock = SimClock()
    ssd = Ssd(clock, SsdConfig())
    fs = HostFs(ssd, FsConfig())
    db = SqliteLikeDb(fs, "/app.db", mode, page_count=PAGES)
    for i in range(KEYS):
        db.put(i, ("seed", i))
    ssd.reset_measurement()
    clock.reset()
    for i in range(OPS):
        db.put(i % KEYS, ("v", i))
    return {
        "mode": mode.value,
        "tps": OPS / clock.now_seconds,
        "device_writes": ssd.stats.host_write_pages,
        "share_pairs": ssd.stats.share_pairs,
        "journal_writes": db.pager.stats.journal_page_writes,
        "wal_frames": db.pager.stats.wal_frames,
    }


def test_sqlite_journal_modes(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: [run_mode(mode) for mode in JournalMode])
    print()
    print(format_table(
        ["mode", "tx/s", "device writes", "share pairs", "journal writes",
         "wal frames"],
        [[r["mode"], r["tps"], r["device_writes"], r["share_pairs"],
          r["journal_writes"], r["wal_frames"]] for r in rows],
        title="SQLite-like engine: journal modes (extension)"))
    by_mode = {r["mode"]: r for r in rows}
    share = by_mode["share"]
    rollback = by_mode["rollback"]
    wal = by_mode["wal"]
    xftl = by_mode["xftl"]
    assert share["device_writes"] < rollback["device_writes"] * 0.55
    assert share["device_writes"] <= wal["device_writes"]
    assert share["tps"] > rollback["tps"] * 1.5
    assert share["tps"] > wal["tps"]
    # X-FTL and SHARE are write-volume equivalent for this pipeline.
    assert 0.8 < xftl["device_writes"] / share["device_writes"] < 1.25
