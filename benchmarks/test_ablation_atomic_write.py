"""Ablation: SHARE vs the atomic-write FTL baseline (Section 6.1).

Related work (Park et al.; FusionIO's atomic-write extension; Ouyang et
al.) supports atomic multi-page writes with a device command whose page
set is fixed at write time.  For the InnoDB flush pipeline the two are
near-equivalent — one physical write per page plus one mapping-page
commit.  SHARE's advantage is flexibility: pages written at any time can
be remapped later, which is what enables the zero-copy Couchbase
compaction no atomic-write FTL can express (the paper's Section 6.1
argument).  This ablation quantifies the InnoDB-side equivalence.
"""

from conftest import run_once

from repro.bench.experiments import run_linkbench_cell
from repro.bench.harness import SCALES
from repro.bench.report import format_table
from repro.innodb.engine import FlushMode

MODES = (FlushMode.DWB_ON, FlushMode.SHARE, FlushMode.ATOMIC_WRITE)


def test_atomic_write_baseline(benchmark, scale):
    params = SCALES[scale]

    def sweep():
        return {mode: run_linkbench_cell(mode, 4096, 50, params)
                for mode in MODES}

    cells = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["mode", "tx/s", "host writes", "gc", "copybacks"],
        [[mode.value, c["throughput_tps"], c["host_write_pages"],
          c["gc_events"], c["copyback_pages"]]
         for mode, c in cells.items()],
        title="Ablation: SHARE vs atomic-write FTL baseline (LinkBench)"))
    share = cells[FlushMode.SHARE]
    atomic = cells[FlushMode.ATOMIC_WRITE]
    dwb = cells[FlushMode.DWB_ON]
    # Both single-write schemes write about half of DWB-On...
    assert share["host_write_pages"] < dwb["host_write_pages"] * 0.6
    assert atomic["host_write_pages"] < dwb["host_write_pages"] * 0.6
    # ...and land within ~15% of each other on throughput.
    ratio = share["throughput_tps"] / atomic["throughput_tps"]
    print(f"\nSHARE vs atomic-write throughput ratio: {ratio:.3f} "
          "(expected ~1.0 for this pipeline; SHARE's edge is the "
          "flexibility the compaction experiments need)")
    assert 0.85 < ratio < 1.2
