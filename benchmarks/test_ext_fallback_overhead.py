"""Extension: what does losing SHARE cost at runtime?

The resilience layer (``repro.host.resilience``) lets every engine keep
running when the SHARE command fails for good — the circuit breaker
opens and each flush degrades to the classic two-phase path.  This
benchmark prices that degradation on the Figure-5 LinkBench cell:

* SHARE healthy — the paper's fast path, zero fallbacks;
* SHARE with the breaker latched open — every flush served by the
  doublewrite-style fallback (staged copy + second home write);
* DWB-On — the classic baseline the fallback is supposed to match.

Shape asserted: healthy SHARE clearly beats the degraded run, and the
degraded run lands inside the DWB-On envelope — falling back costs the
classic price, not more.
"""

from conftest import run_once

from repro.bench.experiments import run_linkbench_cell
from repro.bench.harness import SCALES
from repro.innodb.engine import FlushMode

PAGE_SIZE = 4096
BUFFER_MIB = 50


def test_breaker_forced_fallback_costs_classic_price(benchmark, scale):
    params = SCALES[scale]

    def run_cells():
        share = run_linkbench_cell(FlushMode.SHARE, PAGE_SIZE, BUFFER_MIB,
                                   params)
        degraded = run_linkbench_cell(FlushMode.SHARE, PAGE_SIZE,
                                      BUFFER_MIB, params,
                                      force_fallback=True)
        dwb_on = run_linkbench_cell(FlushMode.DWB_ON, PAGE_SIZE,
                                    BUFFER_MIB, params)
        return share, degraded, dwb_on

    share, degraded, dwb_on = run_once(benchmark, run_cells)
    ratio_vs_dwb = (degraded["throughput_tps"]
                    / dwb_on["throughput_tps"])
    print(f"\nSHARE healthy {share['throughput_tps']:.1f} tx/s, "
          f"breaker-open fallback {degraded['throughput_tps']:.1f} tx/s "
          f"({degraded['resilience_fallbacks']} fallbacks), "
          f"DWB-On {dwb_on['throughput_tps']:.1f} tx/s "
          f"(fallback/DWB-On ratio {ratio_vs_dwb:.3f})")

    # The degraded path really ran — every flush was a fallback — and
    # the healthy path never needed it.
    assert share["resilience_fallbacks"] == 0
    assert degraded["resilience_fallbacks"] > 0
    assert degraded["share_pairs"] == 0, (
        "an open breaker must keep SHARE commands off the device")

    # Healthy SHARE keeps the paper's clear win over its own fallback.
    assert share["throughput_tps"] > degraded["throughput_tps"] * 1.4, (
        "healthy SHARE should clearly beat the breaker-forced fallback")

    # Degradation costs the classic two-phase price, not more: the
    # fallback run stays inside the DWB-On envelope.
    assert 0.9 < ratio_vs_dwb < 1.1, (
        f"breaker-forced fallback should match DWB-On within ~10%: "
        f"ratio {ratio_vs_dwb:.3f}")
