"""Table 1: distribution of LinkBench transaction latency.

Paper shape: SHARE reduces the mean latency of every operation type by
2.1-4.2x, the P99 by 2.0-8.3x, and the max by 1.2-3.4x; read operations
improve as well as writes.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import table1
from repro.workloads.linkbench import READ_OPS, WRITE_OPS


def test_table1_latency_distribution(benchmark, scale):
    result = run_once(benchmark, lambda: table1(scale))
    print()
    print(experiments.print_table1(result))
    dwb = result["cells"]["dwb_on"]["latency_table"]
    share = result["cells"]["share"]["latency_table"]
    mean_improvements = []
    p99_improvements = []
    for op in dwb:
        if dwb[op]["mean"] > 0 and share[op]["mean"] > 0:
            mean_improvements.append(dwb[op]["mean"] / share[op]["mean"])
        if dwb[op]["p99"] > 0 and share[op]["p99"] > 0:
            p99_improvements.append(dwb[op]["p99"] / share[op]["p99"])
    avg_mean = sum(mean_improvements) / len(mean_improvements)
    avg_p99 = sum(p99_improvements) / len(p99_improvements)
    print(f"\nmean-latency improvement {avg_mean:.2f}x, "
          f"P99 improvement {avg_p99:.2f}x (paper: 2.1-4.2x / 2.0-8.3x)")
    assert avg_mean > 1.2, "SHARE must lower average latencies overall"
    assert avg_p99 >= 1.0, "SHARE must not worsen tail latencies"


def test_reads_improve_too(benchmark, scale):
    """Section 5.3.1: SHARE lowers READ latencies as well, because reads
    queue behind fewer and cheaper writes."""
    result = run_once(benchmark, lambda: table1(scale))
    dwb = result["cells"]["dwb_on"]["latency_table"]
    share = result["cells"]["share"]["latency_table"]
    read_gains = [dwb[op]["mean"] / share[op]["mean"]
                  for op in READ_OPS
                  if op in dwb and op in share and share[op]["mean"] > 0]
    assert read_gains, "read operations must appear in the mix"
    assert sum(read_gains) / len(read_gains) > 1.0


def test_all_ten_ops_present(benchmark, scale):
    result = run_once(benchmark, lambda: table1(scale))
    for mode in ("dwb_on", "share"):
        ops = set(result["cells"][mode]["latency_table"])
        assert ops == READ_OPS | WRITE_OPS
