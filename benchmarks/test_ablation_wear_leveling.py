"""Ablation: wear leveling and SHARE's lifespan benefit.

Section 5.3.1 argues SHARE "can provide longer device lifespan" because
fewer writes mean fewer erases.  This ablation measures both halves of
the lifespan story on a hot/cold workload:

* greedy GC vs greedy + static wear leveling — leveling shrinks the
  erase-count *spread* (the most-worn block is what dies first),
* DWB-style doubled writes vs SHARE-style single writes — halving the
  write volume roughly halves the total and max erase counts.
"""

import random

from conftest import run_once

from repro.bench.report import format_table
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

ROUNDS = 60


def run_cell(wear_leveling: bool, write_factor: int, seed: int = 6) -> dict:
    """``write_factor`` 2 mimics a doublewrite host; 1 a SHARE host."""
    clock = SimClock()
    geometry = FlashGeometry(page_size=4096, pages_per_block=32,
                             block_count=96, overprovision_ratio=0.1)
    ssd = Ssd(clock, SsdConfig(
        geometry=geometry, timing=FAST_TIMING,
        ftl=FtlConfig(wear_leveling=wear_leveling,
                      wear_delta_threshold=8)))
    rng = random.Random(seed)
    cold = ssd.logical_pages // 2
    hot = ssd.logical_pages // 8
    for lpn in range(cold):
        ssd.write(lpn, ("cold", lpn))
    for i in range(ROUNDS * hot):
        lpn = cold + rng.randrange(hot)
        for __ in range(write_factor):
            ssd.write(lpn, ("hot", i))
    wear = ssd.nand.wear_summary()
    return {
        "wear_leveling": wear_leveling,
        "write_factor": write_factor,
        "max_erase": wear["max"],
        "mean_erase": wear["mean"],
        "spread": wear["max"] - wear["min"],
        "wl_moves": ssd.ftl.stats.wear_level_moves,
    }


def test_wear_leveling_and_share_lifespan(benchmark, scale):
    def sweep():
        return [run_cell(wl, factor)
                for wl in (False, True) for factor in (2, 1)]

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["wear leveling", "writes/update", "max erase", "mean erase",
         "spread", "WL moves"],
        [[r["wear_leveling"], r["write_factor"], r["max_erase"],
          r["mean_erase"], r["spread"], r["wl_moves"]] for r in rows],
        title="Ablation: wear leveling x write volume (lifespan)"))
    by_key = {(r["wear_leveling"], r["write_factor"]): r for r in rows}
    # Wear leveling shrinks the erase spread at equal write volume.
    assert (by_key[(True, 2)]["spread"] < by_key[(False, 2)]["spread"])
    # Halving host writes (the SHARE effect) cuts peak wear by ~2x.
    leveled_double = by_key[(True, 2)]["max_erase"]
    leveled_single = by_key[(True, 1)]["max_erase"]
    assert leveled_single < leveled_double * 0.65
