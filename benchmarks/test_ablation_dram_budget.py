"""Ablation: the DRAM trade of Section 4.2.1.

"Most of the DRAM space is used by the forward mapping table and the
remaining space is used for I/O buffers and cache.  To minimize the
performance impact, we trade a portion of cache space for the reverse
mapping" — sized at 250 entries (4 KiB of DRAM at 16 B/entry, i.e. one
cache page).

This ablation fixes a small DRAM budget and splits it between the read
cache and the share table, running a mixed read/share workload.  With
the log-backed overflow policy the verdict is unambiguous: share-table
DRAM beyond the paper's 250 entries buys nothing, while every page taken
from the cache costs read hits — i.e. the paper's tiny table is the
right end of the trade.
"""

import random

from conftest import run_once

from repro.bench.report import format_table
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import MLC_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

#: One cache page (4 KiB) holds 256 share-table entries at 16 B each.
ENTRIES_PER_PAGE = 256
BUDGET_PAGES = 512
OPS = 12_000


def run_cell(cache_pages: int) -> dict:
    share_entries = max(1, (BUDGET_PAGES - cache_pages) * ENTRIES_PER_PAGE)
    clock = SimClock()
    geometry = FlashGeometry(page_size=4096, pages_per_block=128,
                             block_count=128, overprovision_ratio=0.08)
    ssd = Ssd(clock, SsdConfig(
        geometry=geometry, timing=MLC_TIMING,
        ftl=FtlConfig(share_table_entries=share_entries,
                      map_block_count=8),
        dram_cache_pages=cache_pages))
    rng = random.Random(21)
    span = int(ssd.logical_pages * 0.5)
    for lpn in range(span):
        ssd.ftl.write(lpn, ("seed", lpn))
    ssd.reset_measurement()
    clock.reset()
    free_base = span
    free_span = ssd.logical_pages - span - 1
    # Mixed workload: mostly skewed reads, some SHARE remaps.
    for i in range(OPS):
        if rng.random() < 0.8:
            # Zipf-ish skew: most reads hit a small hot set that fits a
            # healthy cache but not a starved one.
            if rng.random() < 0.7:
                ssd.read(rng.randrange(max(1, span // 24)))
            else:
                ssd.read(rng.randrange(span))
        else:
            ssd.share(free_base + (i % free_span), rng.randrange(span))
    return {
        "cache_pages": cache_pages,
        "share_entries": share_entries,
        "hit_rate": ssd.cache.hit_rate,
        "elapsed_s": clock.now_seconds,
        "spilled": ssd.ftl.rev.spilled_entries,
    }


def test_dram_budget_split(benchmark, scale):
    def sweep():
        return [run_cell(cache_pages)
                for cache_pages in (0, 128, 384, 511)]

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["cache pages", "share entries", "read hit rate", "elapsed s",
         "spilled entries"],
        [[r["cache_pages"], r["share_entries"], r["hit_rate"],
          r["elapsed_s"], r["spilled"]] for r in rows],
        title="Ablation: fixed DRAM budget split between read cache and "
              "share table (Section 4.2.1)"))
    # More cache = more hits = faster, monotonic across the sweep.
    elapsed = [r["elapsed_s"] for r in rows]
    assert elapsed[0] > elapsed[-1]
    hit_rates = [r["hit_rate"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(hit_rates, hit_rates[1:]))
    # The near-paper split (1 page of entries, rest cache) is within a
    # hair of the best cell: the share table needs almost no DRAM.
    assert elapsed[-1] <= min(elapsed) * 1.05
