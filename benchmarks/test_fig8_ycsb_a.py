"""Figure 8: YCSB workload-A (50 % read / 50 % update) on Couchbase.

Paper shape: SHARE outperforms the original by 2.23x at batch size 1,
narrowing to 1.61x at batch size 256; the advantage is smaller than
workload-F's because half the operations are reads.
"""

from conftest import run_once

from repro.bench import experiments
from repro.bench.experiments import PAPER_BATCH_SIZES, fig7, fig8


def test_fig8_throughput(benchmark, scale):
    result = run_once(benchmark, lambda: fig8(scale))
    print()
    print(experiments.print_fig8(result))
    cells = result["cells"]
    for batch in PAPER_BATCH_SIZES:
        assert (cells[(batch, "share")]["throughput_ops"]
                > cells[(batch, "original")]["throughput_ops"]), (
            f"SHARE must win at batch size {batch}")
    gap_small = (cells[(1, "share")]["throughput_ops"]
                 / cells[(1, "original")]["throughput_ops"])
    gap_large = (cells[(256, "share")]["throughput_ops"]
                 / cells[(256, "original")]["throughput_ops"])
    print(f"\nthroughput gap: {gap_small:.2f}x at batch 1 -> "
          f"{gap_large:.2f}x at batch 256 (paper: 2.23x -> 1.61x)")
    assert gap_small > gap_large
    assert gap_small > 1.5
