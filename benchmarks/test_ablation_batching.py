"""Ablation: batched vs single-pair SHARE commands (Section 3.2).

"This batch SHARE operation can reduce the non-negligible round-trip
overhead in the IO stack of issuing the command via ioctl.  In addition,
this batch can reduce the number of potential flash writes to persist
the updated mapping information."

This ablation remaps the same set of pages with one pair per command vs
maximal batches and measures both effects: command count (round trips)
and mapping-page programs (persistence writes).
"""

from conftest import run_once

from repro.bench.report import format_table
from repro.ftl.share_ext import SharePair
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

PAIRS = 2_000


def run_cell(batch_size: int) -> dict:
    clock = SimClock()
    ssd = Ssd(clock, SsdConfig())
    for lpn in range(PAIRS):
        ssd.write(lpn, ("src", lpn))
    ssd.reset_measurement()
    clock.reset()
    map_writes_before = ssd.ftl.map_page_writes
    pairs = [SharePair(PAIRS + lpn, lpn) for lpn in range(PAIRS)]
    for start in range(0, PAIRS, batch_size):
        ssd.share_batch(pairs[start:start + batch_size])
    return {
        "batch": batch_size,
        "commands": ssd.stats.share_commands,
        "map_page_writes": ssd.ftl.map_page_writes - map_writes_before,
        "elapsed_ms": clock.now_ms,
    }


def test_share_batching_ablation(benchmark, scale):
    def sweep():
        return [run_cell(batch) for batch in (1, 16, 64, 256)]

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["pairs/command", "commands", "mapping-page writes", "elapsed ms"],
        [[r["batch"], r["commands"], r["map_page_writes"],
          r["elapsed_ms"]] for r in rows],
        title="Ablation: SHARE batching (Section 3.2)"))
    single = rows[0]
    maximal = rows[-1]
    assert single["commands"] == PAIRS
    assert maximal["commands"] == -(-PAIRS // 256)
    # Both overheads shrink with batching.
    assert maximal["map_page_writes"] < single["map_page_writes"] / 10
    assert maximal["elapsed_ms"] < single["elapsed_ms"] / 5
    # All remaps took effect identically.
    clockless = [r["commands"] * r["batch"] >= PAIRS for r in rows]
    assert all(clockless)
