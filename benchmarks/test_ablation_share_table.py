"""Ablation: the reverse-mapping share table (Section 4.2.1).

The paper sizes the DRAM share table at 250 entries and notes its size is
"empirically determined" by the frequency of SHARE operations and the
lifespan of shared pages.  This ablation runs a compaction-heavy workload
(hundreds of simultaneously shared pages) across table sizes under both
overflow policies:

* ``log``  — overflowed entries stay resolvable from the mapping log;
  GC pays a lookup read.  Costs stay flat as the table shrinks.
* ``copy`` — overflow reconciles by materialising a private page copy,
  so a too-small table re-introduces the very write amplification SHARE
  removes.
"""

from conftest import run_once

from repro.bench.report import format_table
from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

DOCS = 1_500
TABLE_SIZES = (25, 250, 2_500)


def run_cell(table_entries: int, policy: str) -> dict:
    clock = SimClock()
    geometry = FlashGeometry(page_size=4096, pages_per_block=128,
                             block_count=128, overprovision_ratio=0.08)
    ssd = Ssd(clock, SsdConfig(
        geometry=geometry, timing=FAST_TIMING,
        ftl=FtlConfig(share_table_entries=table_entries,
                      share_overflow_policy=policy,
                      map_block_count=8)))
    fs = HostFs(ssd, FsConfig())
    store = CouchStore(fs, "/db", CommitMode.SHARE, CouchConfig())
    for key in range(DOCS):
        store.set(key, ("v", key))
        if key % 100 == 99:
            store.commit()
    store.commit()
    for key in range(DOCS):
        store.set(key, ("v2", key))
        if key % 16 == 15:
            store.commit()
    store.commit()
    ssd.reset_measurement()
    clock.reset()
    new_store, result = compact(store, clock)
    sample_ok = all(new_store.get(key) == ("v2", key)
                    for key in range(0, DOCS, 131))
    assert sample_ok
    return {
        "table": table_entries,
        "policy": policy,
        "elapsed_s": result.elapsed_seconds,
        "written_pages": ssd.stats.host_write_pages
        + ssd.stats.share_spill_pages,
        "spill_copies": ssd.stats.share_spill_pages,
        "log_spills": ssd.ftl.stats.share_log_spills,
    }


def test_share_table_size_ablation(benchmark, scale):
    def sweep():
        rows = []
        for policy in ("log", "copy"):
            for size in TABLE_SIZES:
                rows.append(run_cell(size, policy))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["policy", "table entries", "compaction s", "pages written",
         "spill copies", "log spills"],
        [[r["policy"], r["table"], r["elapsed_s"], r["written_pages"],
          r["spill_copies"], r["log_spills"]] for r in rows],
        title="Ablation: share-table size x overflow policy"))
    by_key = {(r["policy"], r["table"]): r for r in rows}
    # Log policy: write cost flat regardless of table size.
    log_costs = [by_key[("log", size)]["written_pages"]
                 for size in TABLE_SIZES]
    assert max(log_costs) <= min(log_costs) * 1.05
    # Copy policy: a starved table forces reconciliation copies.
    assert (by_key[("copy", 25)]["spill_copies"]
            > by_key[("copy", 2_500)]["spill_copies"])
    assert (by_key[("copy", 25)]["written_pages"]
            > by_key[("log", 25)]["written_pages"])
