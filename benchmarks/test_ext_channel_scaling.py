"""Extension: multi-channel scaling of the event-driven device.

The tentpole refactor replaced the caller-advances-the-clock timing
model with an event-driven pipeline: a bounded native command queue in
front of per-channel NAND busy resources.  The serial model could never
show channel parallelism — every command blocked the single timeline.
This benchmark sweeps the LinkBench cell over 1/2/4/8 channels with the
paper's 16 closed-loop clients at queue depth 16, SHARE against DWB-On,
and writes the sweep to ``results/channel_scaling.jsonl``.

Shape asserted: throughput scales with channels (4 channels at least
doubles the 1-channel result), SHARE keeps its win at every width, and
the per-channel utilisation telemetry shows the added channels actually
carrying load.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.bench.experiments import run_linkbench_cell
from repro.bench.harness import SCALES
from repro.innodb.engine import FlushMode

PAGE_SIZE = 4096
BUFFER_MIB = 100
CHANNELS = (1, 2, 4, 8)
QUEUE_DEPTH = 16


def test_channel_scaling_linkbench(benchmark, scale):
    params = SCALES[scale]

    def sweep():
        rows = []
        for channels in CHANNELS:
            for mode in (FlushMode.SHARE, FlushMode.DWB_ON):
                cell = run_linkbench_cell(
                    mode, PAGE_SIZE, BUFFER_MIB, params,
                    queue_depth=QUEUE_DEPTH, channel_count=channels)
                rows.append(cell)
        return rows

    rows = run_once(benchmark, sweep)

    out = Path(__file__).resolve().parent.parent / "results" \
        / "channel_scaling.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        for row in rows:
            fh.write(json.dumps({
                "type": "channel_scaling",
                "mode": row["mode"],
                "channel_count": row["channel_count"],
                "queue_depth": row["queue_depth"],
                "throughput_tps": row["throughput_tps"],
                "channel_utilization":
                    row["data_queue_report"]["channel_utilization"],
            }) + "\n")

    share = {row["channel_count"]: row for row in rows
             if row["mode"] == "share"}
    dwb = {row["channel_count"]: row for row in rows
           if row["mode"] == "dwb_on"}
    print()
    for channels in CHANNELS:
        util = share[channels]["data_queue_report"]["channel_utilization"]
        print(f"{channels} ch: SHARE "
              f"{share[channels]['throughput_tps']:8.1f} tx/s, DWB-On "
              f"{dwb[channels]['throughput_tps']:8.1f} tx/s, "
              f"data-device util "
              f"[{', '.join(f'{u:.2f}' for u in util)}]")

    # The acceptance bar: 4 channels with 16 clients at least doubles
    # the 1-channel throughput.
    speedup = (share[4]["throughput_tps"] / share[1]["throughput_tps"])
    assert speedup >= 2.0, (
        f"4-channel SHARE throughput only {speedup:.2f}x the 1-channel "
        f"result")

    # Scaling is monotone over the sweep for both modes.
    for table in (share, dwb):
        tps = [table[channels]["throughput_tps"] for channels in CHANNELS]
        assert all(b > a for a, b in zip(tps, tps[1:])), tps

    # SHARE keeps its paper win at every channel width.
    for channels in CHANNELS:
        assert (share[channels]["throughput_tps"]
                > dwb[channels]["throughput_tps"])

    # The added channels really carry load: at 4 channels every channel
    # shows nonzero utilisation on the data device.
    util4 = share[4]["data_queue_report"]["channel_utilization"]
    assert len(util4) == 4
    assert all(u > 0.05 for u in util4), util4
