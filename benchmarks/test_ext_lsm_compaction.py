"""Extension (paper Section 2.2): SHARE-assisted LSM compaction.

The paper notes that LSM-based stores (BigTable, Cassandra, MongoDB)
"have the similar issue" — merge compaction rewrites data that did not
change.  This benchmark builds an LSM store, applies zipfian-skewed
updates so the bottom level is mostly cold, and compares the classic
copy merge against the SHARE merge that remaps provably-unchanged data
blocks.

Expected shape (the Couchbase Table 2 analogue): the SHARE merge writes
a small fraction of the blocks and finishes several times faster, with
the reuse ratio tracking the cold fraction of the key space.
"""

import random

from conftest import run_once

from repro.bench.report import format_table
from repro.flash.geometry import FlashGeometry
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.lsm import CompactionMode, LsmConfig, LsmStore
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

KEYS = 20_000
HOT_FRACTION = 0.1
UPDATES = 8_000


def run_mode(mode: CompactionMode) -> dict:
    clock = SimClock()
    geometry = FlashGeometry(page_size=4096, pages_per_block=128,
                             block_count=256, overprovision_ratio=0.08)
    ssd = Ssd(clock, SsdConfig(geometry=geometry,
                               ftl=FtlConfig(map_block_count=16)))
    fs = HostFs(ssd, FsConfig())
    store = LsmStore(fs, "db", mode, clock,
                     LsmConfig(memtable_limit=2048, l0_limit=8,
                               block_capacity=16))
    for key in range(KEYS):
        store.put(key, ("cold", key))
        if key % 256 == 255:
            store.commit()
    store.flush_memtable()
    rng = random.Random(11)
    hot_span = int(KEYS * HOT_FRACTION)
    for i in range(UPDATES):
        store.put(rng.randrange(hot_span), ("hot", i))
        if i % 256 == 255:
            store.commit()
    store.commit()
    store.flush_memtable()
    ssd.reset_measurement()
    clock.reset()
    result = store.compact()
    sample_ok = all(store.get(key) == ("cold", key)
                    for key in range(hot_span, KEYS, 997))
    assert sample_ok
    return {
        "mode": mode.value,
        "elapsed_s": result.elapsed_seconds,
        "blocks_written": result.blocks_written,
        "blocks_shared": result.blocks_shared,
        "written_mib": ssd.stats.host_written_bytes / 2**20,
        "share_commands": result.share_commands,
    }


def test_lsm_share_compaction(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: {mode: run_mode(mode) for mode in CompactionMode})
    print()
    print(format_table(
        ["mode", "elapsed s", "blocks written", "blocks shared",
         "device MiB written", "share cmds"],
        [[r["mode"], r["elapsed_s"], r["blocks_written"],
          r["blocks_shared"], r["written_mib"], r["share_commands"]]
         for r in rows.values()],
        title="Extension: LSM merge compaction, copy vs SHARE"))
    copy = rows[CompactionMode.COPY]
    share = rows[CompactionMode.SHARE]
    reuse_ratio = share["blocks_shared"] / (share["blocks_shared"]
                                            + share["blocks_written"])
    print(f"\nSHARE merge reused {reuse_ratio:.0%} of the data blocks, "
          f"wrote {copy['written_mib'] / share['written_mib']:.1f}x fewer "
          f"MiB, finished "
          f"{copy['elapsed_s'] / share['elapsed_s']:.1f}x faster")
    assert copy["blocks_shared"] == 0
    assert share["blocks_shared"] > share["blocks_written"]
    assert reuse_ratio > 0.5
    assert share["written_mib"] < copy["written_mib"] * 0.5
    assert share["elapsed_s"] < copy["elapsed_s"] * 0.6