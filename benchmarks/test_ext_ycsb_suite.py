"""Extension: the full YCSB suite (A-F) over the couch engine.

The paper evaluates A and F and skips B-E as "read-intensive".  This
benchmark runs all six, quantifying that choice: SHARE's advantage is
proportional to the write share of the mix — large on A/F, marginal on
B/D/E, and exactly zero on the read-only C.
"""

from conftest import run_once

from repro.bench.harness import build_couch_stack
from repro.bench.report import format_table
from repro.couchstore.engine import CommitMode
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload

RECORDS = 4_000
OPS = 3_000
BATCH = 8


def run_cell(workload: YcsbWorkload, mode: CommitMode) -> dict:
    stack = build_couch_stack(mode, RECORDS, OPS * 2)
    driver = YcsbDriver(stack.store, stack.clock,
                        YcsbConfig(record_count=RECORDS))
    driver.load()
    stack.ssd.reset_measurement()
    stack.clock.reset()
    result = driver.run(workload, OPS, batch_size=BATCH)
    return {
        "throughput": result.throughput_ops,
        "writes": result.writes,
        "written_pages": stack.ssd.stats.host_write_pages,
    }


def test_full_ycsb_suite(benchmark, scale):
    def sweep():
        cells = {}
        for workload in YcsbWorkload:
            for mode in CommitMode:
                cells[(workload, mode)] = run_cell(workload, mode)
        return cells

    cells = run_once(benchmark, sweep)
    rows = []
    gaps = {}
    for workload in YcsbWorkload:
        original = cells[(workload, CommitMode.ORIGINAL)]
        share = cells[(workload, CommitMode.SHARE)]
        gap = share["throughput"] / original["throughput"]
        gaps[workload] = gap
        rows.append([workload.value, original["throughput"],
                     share["throughput"], gap,
                     share["writes"] / OPS])
    print()
    print(format_table(
        ["workload", "original ops/s", "SHARE ops/s", "gap",
         "write fraction"], rows,
        title="Extension: full YCSB suite, original vs SHARE"))
    # Write-heavy mixes benefit most; the read-only mix is a wash.
    assert gaps[YcsbWorkload.A] > gaps[YcsbWorkload.B]
    assert gaps[YcsbWorkload.F] > gaps[YcsbWorkload.C]
    assert 0.95 < gaps[YcsbWorkload.C] < 1.05
    assert gaps[YcsbWorkload.A] > 1.3
    assert gaps[YcsbWorkload.F] > 1.3
