"""Extension (paper Section 6.3): data=journal filesystems and JFTL.

Full data journaling writes every page twice (journal + home); JFTL
showed the home write can become an FTL remap.  This benchmark drives
random journaled page updates through both checkpoint modes and measures
the write volumes — SHARE checkpoints should eliminate the second copy
entirely, roughly halving device writes, exactly JFTL's result expressed
through the public SHARE interface.
"""

import random

from conftest import run_once

from repro.bench.report import format_table
from repro.host.datajournal import CheckpointMode, DataJournalingFs
from repro.host.filesystem import FsConfig, HostFs
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

OPS = 2_000
FILE_BLOCKS = 512
JOURNAL_BLOCKS = 128


def run_mode(mode: CheckpointMode) -> dict:
    clock = SimClock()
    ssd = Ssd(clock, SsdConfig())
    fs = HostFs(ssd, FsConfig())
    journal = DataJournalingFs(fs, mode, journal_blocks=JOURNAL_BLOCKS)
    data_file = fs.create("/data")
    data_file.fallocate(FILE_BLOCKS)
    rng = random.Random(13)
    ssd.reset_measurement()
    clock.reset()
    for i in range(OPS):
        journal.begin()
        for __ in range(rng.randrange(1, 4)):
            journal.journaled_write(data_file, rng.randrange(FILE_BLOCKS),
                                    ("v", i))
        journal.commit()
    journal.checkpoint()
    return {
        "mode": mode.value,
        "tps": OPS / clock.now_seconds,
        "journaled_pages": journal.stats.journaled_pages,
        "checkpoint_writes": journal.stats.checkpoint_writes,
        "share_pairs": journal.stats.checkpoint_share_pairs,
        "device_writes": ssd.stats.host_write_pages,
    }


def test_data_journal_share_checkpoint(benchmark, scale):
    rows = run_once(benchmark,
                    lambda: {m: run_mode(m) for m in CheckpointMode})
    print()
    print(format_table(
        ["mode", "tx/s", "journaled pages", "checkpoint writes",
         "share pairs", "device writes"],
        [[r["mode"], r["tps"], r["journaled_pages"],
          r["checkpoint_writes"], r["share_pairs"], r["device_writes"]]
         for r in rows.values()],
        title="Extension: data=journal checkpointing, classic vs SHARE "
              "(the JFTL comparison)"))
    classic = rows[CheckpointMode.CLASSIC]
    share = rows[CheckpointMode.SHARE]
    assert share["checkpoint_writes"] == 0
    assert share["share_pairs"] > 0
    assert share["device_writes"] < classic["device_writes"] * 0.75
    assert share["tps"] > classic["tps"] * 1.2
