"""Extension: sharded-tier failover and rebalance under LinkBench load.

The robustness tentpole put a replicated, breaker-guarded shard tier in
front of the event-driven devices: a consistent-hash router over three
primary/replica pairs, an epoch-fenced delta log replicating every
mutation (including SHARE remaps), and breaker-driven promotion when a
primary dies.  This benchmark measures what that machinery costs when it
actually fires: a healthy phase establishes the baseline client latency,
a mid-phase :class:`~repro.sim.faults.ShardKill` power-cycles one
primary between replication pumps (so the replica is behind and the
promotion must replay the delta-log tail), and a final phase measures
the tier after the failover settled on the promoted replica.

A second experiment raises the stakes on write durability: an R=2,
write-quorum-2 tier (every ack is on two devices) absorbs an
add-one-shard ring resize while LinkBench clients keep issuing traffic.
Migration batches interleave with operation chunks, so the dual-read
handoff, migration-epoch fencing, and SHARE-aware key transfer all run
against live load; afterwards every acked node key must read back
through the grown ring.

Rows land in ``results/cluster_failover.jsonl``: one per phase (p50 /
p99 / max client latency, throughput), one for the failover event
(victim, replay size, promotion duration, new epoch), one for the
rebalance (keys migrated, SHARE-remap transfers, migration epoch), and
final ``cluster.*`` / ``resilience.breaker_state.*`` telemetry
snapshots where the breaker trip and the promoted shard's epoch bump
are visible.

Shape asserted: exactly one kill and one failover; every node key acked
before the kill reads back afterwards (no lost acked writes); the
promoted shard runs at epoch 1; the post-failover phase still completes
the full operation count; and the quorum tier finishes its rebalance
with zero lost acked keys and a nonzero migrated-key count.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.bench.harness import SCALES, build_cluster_stack
from repro.obs import Telemetry
from repro.obs.sinks import MemorySink
from repro.sim.faults import FaultPlan, ShardKill
from repro.workloads.linkbench import ClusterLinkBenchDriver, LinkBenchConfig

SHARDS = 3
CLIENTS = 4


def _phase_row(phase, result):
    merged = result.latencies.merged()
    summary = merged.summary()
    return {
        "type": "cluster_phase",
        "phase": phase,
        "transactions": result.transactions,
        "throughput_tps": result.throughput_tps,
        "samples": len(merged),
        "p50_ms": summary["p50"],
        "p99_ms": summary["p99"],
        "max_ms": summary["max"],
    }


def test_cluster_failover(benchmark, scale):
    params = SCALES[scale]
    nodes = max(300, params.linkbench_nodes // 4)
    phase_ops = max(600, params.linkbench_transactions // 2)

    def experiment():
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, mode="sampled")
        faults = FaultPlan()
        stack = build_cluster_stack(shards=SHARDS, keys_estimate=nodes * 6,
                                    telemetry=telemetry, faults=faults)
        driver = ClusterLinkBenchDriver(
            stack.router, stack.clock,
            LinkBenchConfig(node_count=nodes, links_per_node=2))
        driver.load()

        healthy = driver.run(phase_ops, concurrency=CLIENTS)

        # Ack counting starts when the plan arms, so the kill lands a
        # quarter of the way into the degraded phase — between pumps,
        # leaving delta-log lag the promotion has to replay.
        faults.arm_cluster(ShardKill(nth=max(8, phase_ops // 4)))
        degraded = driver.run(phase_ops, concurrency=CLIENTS)

        post = driver.run(phase_ops, concurrency=CLIENTS)
        stack.router.ensure_healthy()
        stack.router.pump_replication()
        stack.router.drain()
        snapshot = telemetry.snapshot(stack.clock.now_us)["metrics"]

        # No lost acked writes: every node key was acked (at load or by
        # a later update) and delete_node re-puts, so each must read
        # back non-None through the post-failover tier.
        lost = [node_id for node_id in range(nodes)
                if stack.router.get(("node", node_id)) is None]

        return {
            "stack": stack,
            "faults": faults,
            "rows": {"healthy": healthy, "degraded": degraded,
                     "post_failover": post},
            "snapshot": snapshot,
            "lost": lost,
        }

    outcome = run_once(benchmark, experiment)
    stack = outcome["stack"]
    stats = stack.router.stats
    events = stack.router.controller.events
    fired = outcome["faults"].cluster.fired_faults()

    assert len(fired) == 1, "the armed shard kill never fired"
    assert stats.kills == 1
    assert stats.failovers == 1, (
        f"expected exactly one failover, saw {stats.failovers}")
    assert len(events) == 1
    event = events[0]
    assert event.epoch == 1
    assert event.duration_us > 0
    assert outcome["lost"] == [], (
        f"{len(outcome['lost'])} acked node keys lost after failover")
    out = Path(__file__).resolve().parent.parent / "results" \
        / "cluster_failover.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    snapshot = outcome["snapshot"]
    telemetry_row = {
        "type": "cluster_telemetry",
        "metrics": {name: value for name, value in sorted(snapshot.items())
                    if name.startswith(("cluster.",
                                        "resilience.breaker_state."))},
    }
    with out.open("w") as fh:
        for phase in ("healthy", "degraded", "post_failover"):
            fh.write(json.dumps(
                _phase_row(phase, outcome["rows"][phase])) + "\n")
        fh.write(json.dumps({
            "type": "failover_event",
            "shard": event.shard,
            "victim": fired[0].victim,
            "at_us": event.at_us,
            "duration_us": event.duration_us,
            "replayed": event.replayed,
            "epoch": event.epoch,
            "old_primary": event.old_primary,
            "new_primary": event.new_primary,
        }) + "\n")
        fh.write(json.dumps(telemetry_row) + "\n")

    healthy_row = _phase_row("healthy", outcome["rows"]["healthy"])
    post_row = _phase_row("post_failover", outcome["rows"]["post_failover"])
    print()
    print(f"healthy:       {healthy_row['throughput_tps']:8.1f} tx/s, "
          f"p99 {healthy_row['p99_ms']:.3f} ms")
    print(f"post-failover: {post_row['throughput_tps']:8.1f} tx/s, "
          f"p99 {post_row['p99_ms']:.3f} ms")
    print(f"failover: shard {event.shard} ({event.old_primary} -> "
          f"{event.new_primary}), {event.replayed} record(s) replayed, "
          f"{event.duration_us} us, epoch {event.epoch}")

    # The tier still serves after promotion: the post phase completed
    # every operation and recorded real latencies.
    assert post_row["transactions"] == phase_ops
    assert post_row["p99_ms"] > 0


def test_cluster_rebalance_quorum(benchmark, scale):
    """R=2 / write-quorum-2 tier grows by one shard under live traffic.

    Every ack lands on two devices before the client sees it; the ring
    resize interleaves migration batches with LinkBench operation
    chunks, so reads hit the dual-read handoff window and writes settle
    pending keys early.  Afterwards every acked node key must still
    read back through the grown ring."""
    params = SCALES[scale]
    nodes = max(240, params.linkbench_nodes // 5)
    phase_ops = max(400, params.linkbench_transactions // 3)

    def experiment():
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, mode="sampled")
        stack = build_cluster_stack(shards=SHARDS, keys_estimate=nodes * 6,
                                    telemetry=telemetry,
                                    replicas=2, write_quorum=2,
                                    spare_shards=1)
        driver = ClusterLinkBenchDriver(
            stack.router, stack.clock,
            LinkBenchConfig(node_count=nodes, links_per_node=2))
        driver.load()

        healthy = driver.run(phase_ops, concurrency=CLIENTS)

        # Join the spare shard, then alternate traffic chunks with
        # migration batches: clients run *during* the resize, not
        # around it.
        rebalancer = stack.router.start_rebalance(add=stack.spares[0])
        chunk = max(40, phase_ops // 8)
        during_chunks = []
        while not rebalancer.done:
            during_chunks.append(driver.run(chunk, concurrency=CLIENTS))
            rebalancer.step()
        pending_after = stack.router.migration_pending

        post = driver.run(phase_ops, concurrency=CLIENTS)
        stack.router.pump_replication()
        stack.router.drain()
        snapshot = telemetry.snapshot(stack.clock.now_us)["metrics"]

        lost = [node_id for node_id in range(nodes)
                if stack.router.get(("node", node_id)) is None]

        return {
            "stack": stack,
            "rows": {"quorum_healthy": healthy,
                     "quorum_post_rebalance": post},
            "during_chunks": during_chunks,
            "pending_after": pending_after,
            "snapshot": snapshot,
            "lost": lost,
        }

    outcome = run_once(benchmark, experiment)
    stack = outcome["stack"]
    stats = stack.router.stats

    assert stats.rebalances == 1
    assert outcome["pending_after"] == 0, (
        f"{outcome['pending_after']} keys still pending after rebalance")
    assert stack.router.migration_pending == 0
    assert "shard3" in stack.router.pairs, "joined shard missing from ring"
    assert stats.migrated_keys > 0, "ring resize moved no keys"
    assert outcome["during_chunks"], "rebalance finished before any traffic"
    assert outcome["lost"] == [], (
        f"{len(outcome['lost'])} acked node keys unreadable after rebalance")
    # Quorum acks actually engaged: every write synced a replica.
    quorum_syncs = sum(pair.stats().quorum_syncs
                       for pair in stack.router.pairs.values())
    assert quorum_syncs > 0

    during_tx = sum(r.transactions for r in outcome["during_chunks"])
    during_p99 = max(_phase_row("x", r)["p99_ms"]
                     for r in outcome["during_chunks"])
    out = Path(__file__).resolve().parent.parent / "results" \
        / "cluster_failover.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    snapshot = outcome["snapshot"]
    with out.open("a") as fh:
        for phase in ("quorum_healthy", "quorum_post_rebalance"):
            fh.write(json.dumps(
                _phase_row(phase, outcome["rows"][phase])) + "\n")
        fh.write(json.dumps({
            "type": "rebalance_event",
            "added": "shard3",
            "migrated_keys": stats.migrated_keys,
            "shared_migrations": stats.shared_migrations,
            "migration_epoch": stack.router.migration_epoch,
            "transactions_during_migration": during_tx,
            "p99_ms_during_migration": during_p99,
        }) + "\n")
        fh.write(json.dumps({
            "type": "cluster_telemetry",
            "experiment": "quorum_rebalance",
            "metrics": {name: value
                        for name, value in sorted(snapshot.items())
                        if name.startswith(("cluster.",
                                            "resilience.breaker_state."))},
        }) + "\n")

    healthy_row = _phase_row("quorum_healthy",
                             outcome["rows"]["quorum_healthy"])
    post_row = _phase_row("quorum_post_rebalance",
                          outcome["rows"]["quorum_post_rebalance"])
    print()
    print(f"quorum healthy:  {healthy_row['throughput_tps']:8.1f} tx/s, "
          f"p99 {healthy_row['p99_ms']:.3f} ms")
    print(f"during resize:   {during_tx} tx, p99 {during_p99:.3f} ms")
    print(f"post rebalance:  {post_row['throughput_tps']:8.1f} tx/s, "
          f"p99 {post_row['p99_ms']:.3f} ms")
    print(f"rebalance: {stats.migrated_keys} key(s) moved "
          f"({stats.shared_migrations} via SHARE remap), "
          f"epoch {stack.router.migration_epoch}")

    assert post_row["transactions"] == phase_ops
    assert post_row["p99_ms"] > 0
