"""Extension: sharded-tier failover under LinkBench load.

The robustness tentpole put a replicated, breaker-guarded shard tier in
front of the event-driven devices: a consistent-hash router over three
primary/replica pairs, an epoch-fenced delta log replicating every
mutation (including SHARE remaps), and breaker-driven promotion when a
primary dies.  This benchmark measures what that machinery costs when it
actually fires: a healthy phase establishes the baseline client latency,
a mid-phase :class:`~repro.sim.faults.ShardKill` power-cycles one
primary between replication pumps (so the replica is behind and the
promotion must replay the delta-log tail), and a final phase measures
the tier after the failover settled on the promoted replica.

Rows land in ``results/cluster_failover.jsonl``: one per phase (p50 /
p99 / max client latency, throughput), one for the failover event
(victim, replay size, promotion duration, new epoch), and a final
``cluster.*`` / ``resilience.breaker_state.*`` telemetry snapshot where
the breaker trip and the promoted shard's epoch bump are visible.

Shape asserted: exactly one kill and one failover; every node key acked
before the kill reads back afterwards (no lost acked writes); the
promoted shard runs at epoch 1; and the post-failover phase still
completes the full operation count.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.bench.harness import SCALES, build_cluster_stack
from repro.obs import Telemetry
from repro.obs.sinks import MemorySink
from repro.sim.faults import FaultPlan, ShardKill
from repro.workloads.linkbench import ClusterLinkBenchDriver, LinkBenchConfig

SHARDS = 3
CLIENTS = 4


def _phase_row(phase, result):
    merged = result.latencies.merged()
    summary = merged.summary()
    return {
        "type": "cluster_phase",
        "phase": phase,
        "transactions": result.transactions,
        "throughput_tps": result.throughput_tps,
        "samples": len(merged),
        "p50_ms": summary["p50"],
        "p99_ms": summary["p99"],
        "max_ms": summary["max"],
    }


def test_cluster_failover(benchmark, scale):
    params = SCALES[scale]
    nodes = max(300, params.linkbench_nodes // 4)
    phase_ops = max(600, params.linkbench_transactions // 2)

    def experiment():
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, mode="sampled")
        faults = FaultPlan()
        stack = build_cluster_stack(shards=SHARDS, keys_estimate=nodes * 6,
                                    telemetry=telemetry, faults=faults)
        driver = ClusterLinkBenchDriver(
            stack.router, stack.clock,
            LinkBenchConfig(node_count=nodes, links_per_node=2))
        driver.load()

        healthy = driver.run(phase_ops, concurrency=CLIENTS)

        # Ack counting starts when the plan arms, so the kill lands a
        # quarter of the way into the degraded phase — between pumps,
        # leaving delta-log lag the promotion has to replay.
        faults.arm_cluster(ShardKill(nth=max(8, phase_ops // 4)))
        degraded = driver.run(phase_ops, concurrency=CLIENTS)

        post = driver.run(phase_ops, concurrency=CLIENTS)
        stack.router.ensure_healthy()
        stack.router.pump_replication()
        stack.router.drain()
        snapshot = telemetry.snapshot(stack.clock.now_us)["metrics"]

        # No lost acked writes: every node key was acked (at load or by
        # a later update) and delete_node re-puts, so each must read
        # back non-None through the post-failover tier.
        lost = [node_id for node_id in range(nodes)
                if stack.router.get(("node", node_id)) is None]

        return {
            "stack": stack,
            "faults": faults,
            "rows": {"healthy": healthy, "degraded": degraded,
                     "post_failover": post},
            "snapshot": snapshot,
            "lost": lost,
        }

    outcome = run_once(benchmark, experiment)
    stack = outcome["stack"]
    stats = stack.router.stats
    events = stack.router.controller.events
    fired = outcome["faults"].cluster.fired_faults()

    assert len(fired) == 1, "the armed shard kill never fired"
    assert stats.kills == 1
    assert stats.failovers == 1, (
        f"expected exactly one failover, saw {stats.failovers}")
    assert len(events) == 1
    event = events[0]
    assert event.epoch == 1
    assert event.duration_us > 0
    assert outcome["lost"] == [], (
        f"{len(outcome['lost'])} acked node keys lost after failover")
    out = Path(__file__).resolve().parent.parent / "results" \
        / "cluster_failover.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    snapshot = outcome["snapshot"]
    telemetry_row = {
        "type": "cluster_telemetry",
        "metrics": {name: value for name, value in sorted(snapshot.items())
                    if name.startswith(("cluster.",
                                        "resilience.breaker_state."))},
    }
    with out.open("w") as fh:
        for phase in ("healthy", "degraded", "post_failover"):
            fh.write(json.dumps(
                _phase_row(phase, outcome["rows"][phase])) + "\n")
        fh.write(json.dumps({
            "type": "failover_event",
            "shard": event.shard,
            "victim": fired[0].victim,
            "at_us": event.at_us,
            "duration_us": event.duration_us,
            "replayed": event.replayed,
            "epoch": event.epoch,
            "old_primary": event.old_primary,
            "new_primary": event.new_primary,
        }) + "\n")
        fh.write(json.dumps(telemetry_row) + "\n")

    healthy_row = _phase_row("healthy", outcome["rows"]["healthy"])
    post_row = _phase_row("post_failover", outcome["rows"]["post_failover"])
    print()
    print(f"healthy:       {healthy_row['throughput_tps']:8.1f} tx/s, "
          f"p99 {healthy_row['p99_ms']:.3f} ms")
    print(f"post-failover: {post_row['throughput_tps']:8.1f} tx/s, "
          f"p99 {post_row['p99_ms']:.3f} ms")
    print(f"failover: shard {event.shard} ({event.old_primary} -> "
          f"{event.new_primary}), {event.replayed} record(s) replayed, "
          f"{event.duration_us} us, epoch {event.epoch}")

    # The tier still serves after promotion: the post phase completed
    # every operation and recorded real latencies.
    assert post_row["transactions"] == phase_ops
    assert post_row["p99_ms"] > 0
